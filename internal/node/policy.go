package node

// Additional local scheduling policies beyond the paper's EDF baseline.
// They exist for the policy ablation: the paper's premise is that local
// schedulers act on the deadlines they are shown, and these policies probe
// how the SDA strategies fare under different local disciplines.

// LLF is least-laxity-first: items are ordered by laxity
//
//	laxity = virtual deadline - now - remaining execution time.
//
// With a common "now" for all queued items, the ordering reduces to the
// static key (virtual deadline - remaining execution), so no dynamic
// re-sorting is needed. Like EDF it honours the GF priority band.
type LLF struct{}

var _ Policy = LLF{}

// Less implements Policy.
func (LLF) Less(a, b *Item) bool {
	if a.Task.PriorityBoost != b.Task.PriorityBoost {
		return a.Task.PriorityBoost
	}
	la := a.Task.VirtualDeadline.Sub(0) - a.remaining
	lb := b.Task.VirtualDeadline.Sub(0) - b.remaining
	if la != lb {
		return la < lb
	}
	return a.seq < b.seq
}

// Name implements Policy.
func (LLF) Name() string { return "LLF" }

// SJF is shortest-job-first on remaining service demand. It ignores
// deadlines entirely (like FIFO) but minimises mean waiting time; the
// ablation shows that favourable mean statistics do not translate into
// met deadlines.
type SJF struct{}

var _ Policy = SJF{}

// Less implements Policy.
func (SJF) Less(a, b *Item) bool {
	if a.remaining != b.remaining {
		return a.remaining < b.remaining
	}
	return a.seq < b.seq
}

// Name implements Policy.
func (SJF) Name() string { return "SJF" }

// ParsePolicy resolves a policy by name (case-sensitive short names used
// by the CLI tools): "edf", "fifo", "llf", "sjf".
func ParsePolicy(name string) (Policy, bool) {
	switch name {
	case "edf", "EDF":
		return EDF{}, true
	case "fifo", "FIFO":
		return FIFO{}, true
	case "llf", "LLF":
		return LLF{}, true
	case "sjf", "SJF":
		return SJF{}, true
	default:
		return nil, false
	}
}
