package node

import (
	"fmt"
	"testing"

	"repro/internal/simtime"
)

// logObserver appends "<label>.<callback>" per event, exposing fan-out
// order across all five callbacks.
type logObserver struct {
	label string
	log   *[]string
}

func (o logObserver) note(cb string) { *o.log = append(*o.log, o.label+"."+cb) }

func (o logObserver) OnEnqueue(*Node, *Item, simtime.Time) { o.note("enqueue") }
func (o logObserver) OnStart(*Node, *Item, simtime.Time)   { o.note("start") }
func (o logObserver) OnFinish(*Node, *Item, simtime.Time)  { o.note("finish") }
func (o logObserver) OnAbort(*Node, *Item, simtime.Time)   { o.note("abort") }
func (o logObserver) OnPreempt(*Node, *Item, simtime.Time) { o.note("preempt") }

func TestCombineObserversFanOutOrder(t *testing.T) {
	var log []string
	combined := CombineObservers(
		logObserver{"a", &log},
		nil,
		logObserver{"b", &log},
		logObserver{"c", &log},
	)
	callbacks := []struct {
		name string
		fire func(Observer)
	}{
		{"enqueue", func(o Observer) { o.OnEnqueue(nil, nil, 1) }},
		{"start", func(o Observer) { o.OnStart(nil, nil, 2) }},
		{"finish", func(o Observer) { o.OnFinish(nil, nil, 3) }},
		{"abort", func(o Observer) { o.OnAbort(nil, nil, 4) }},
		{"preempt", func(o Observer) { o.OnPreempt(nil, nil, 5) }},
	}
	for _, cb := range callbacks {
		log = log[:0]
		cb.fire(combined)
		want := []string{"a." + cb.name, "b." + cb.name, "c." + cb.name}
		if fmt.Sprint(log) != fmt.Sprint(want) {
			t.Fatalf("%s fan-out = %v, want %v (argument order, nils skipped)", cb.name, log, want)
		}
	}
}

func TestCombineObserversDegenerateCases(t *testing.T) {
	if got := CombineObservers(); got != nil {
		t.Fatalf("combining nothing must yield nil, got %T", got)
	}
	if got := CombineObservers(nil, nil); got != nil {
		t.Fatalf("combining only nils must yield nil, got %T", got)
	}
	var log []string
	single := logObserver{"s", &log}
	got := CombineObservers(nil, single, nil)
	if _, wrapped := got.(multiObserver); wrapped {
		t.Fatalf("a single non-nil observer must be returned unwrapped")
	}
	got.OnEnqueue(nil, nil, 0)
	if len(log) != 1 || log[0] != "s.enqueue" {
		t.Fatalf("unwrapped observer did not receive the event: %v", log)
	}
}
