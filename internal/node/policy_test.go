package node

import (
	"testing"

	"repro/internal/des"
	"repro/internal/simtime"
)

func TestLLFOrder(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPolicy(LLF{}))
	var order []string
	submit := func(name string, vdl simtime.Time, ex simtime.Duration) {
		it := mkItem(t, name, vdl, ex)
		it.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	submit("hold", 100, 1)
	// tight: laxity key 10-8 = 2; loose: 6-1 = 5. EDF would serve loose
	// (deadline 6) first; LLF must serve tight first.
	submit("loose", 6, 1)
	submit("tight", 10, 8)
	eng.Run()
	want := []string{"hold", "tight", "loose"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (least laxity first)", order, want)
		}
	}
}

func TestLLFBoostBand(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPolicy(LLF{}))
	var order []string
	hold := mkItem(t, "hold", 1, 1)
	hold.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	urgent := mkItem(t, "urgent", 2, 0.5)
	urgent.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	boosted := mkItem(t, "boosted", 100, 5)
	boosted.Task.PriorityBoost = true
	boosted.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	for _, it := range []*Item{hold, urgent, boosted} {
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if order[1] != "boosted" {
		t.Errorf("order = %v, want the GF band first", order)
	}
}

func TestSJFOrder(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPolicy(SJF{}))
	var order []string
	submit := func(name string, ex simtime.Duration) {
		it := mkItem(t, name, 5, ex) // same deadline: SJF ignores it anyway
		it.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	submit("hold", 1)
	submit("long", 9)
	submit("short", 1)
	submit("mid", 4)
	eng.Run()
	want := []string{"hold", "short", "mid", "long"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"edf": "EDF", "fifo": "FIFO", "llf": "LLF", "sjf": "SJF",
		"EDF": "EDF", "LLF": "LLF",
	} {
		p, ok := ParsePolicy(name)
		if !ok {
			t.Errorf("ParsePolicy(%q) not found", name)
			continue
		}
		if p.Name() != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, ok := ParsePolicy("bogus"); ok {
		t.Error("bogus policy resolved")
	}
}
