package node

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/simtime"
)

func TestSetRateSlowsService(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	n.SetRate(0.5)
	var doneAt simtime.Time
	it := mkItem(t, "a", 100, 4)
	it.OnDone = func(_ *Item, at simtime.Time) { doneAt = at }
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 4 work units at rate 0.5 take 8 time units.
	if doneAt != 8 {
		t.Errorf("done at %v, want 8", doneAt)
	}
}

func TestSetRateMidServiceKeepsCompletedWork(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	it := mkItem(t, "a", 100, 4)
	var doneAt simtime.Time
	it.OnDone = func(_ *Item, at simtime.Time) { doneAt = at }
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	// Degrade to half speed at t=2: 2 of 4 units done, the remaining 2
	// take 4 more time units -> finish at 6.
	if _, err := eng.At(2, func() { n.SetRate(0.5) }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt != 6 {
		t.Errorf("done at %v, want 6", doneAt)
	}
	if got := n.Rate(); got != 0.5 {
		t.Errorf("rate = %v, want 0.5", got)
	}
}

func TestSetRateRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetRate(0) did not panic")
		}
	}()
	eng := des.New()
	New(0, eng).SetRate(0)
}

func TestCrashLosesStretchAndRestartResumes(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	var doneAt simtime.Time
	it := mkItem(t, "a", 100, 4)
	it.OnDone = func(_ *Item, at simtime.Time) { doneAt = at }
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	// Crash at t=3 (3 of 4 units done, all lost), restart at t=5; the
	// item then runs its full 4 units again -> finish at 9.
	if _, err := eng.At(3, func() { n.Crash() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(5, func() { n.Restart() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt != 9 {
		t.Errorf("done at %v, want 9", doneAt)
	}
	if n.Down() {
		t.Error("node still down after restart")
	}
	if n.Crashes() != 1 {
		t.Errorf("crashes = %d, want 1", n.Crashes())
	}
	// The lost stretch counts as busy occupancy: 3 (lost) + 4 (redo).
	if got := n.BusyTime(); got != 7 {
		t.Errorf("busy time = %v, want 7", got)
	}
}

func TestCrashHoldsQueueUntilRestart(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	n.Crash()
	var doneAt simtime.Time
	it := mkItem(t, "a", 100, 1)
	it.OnDone = func(_ *Item, at simtime.Time) { doneAt = at }
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if it.State() != StateQueued {
		t.Fatalf("state = %v while down, want queued", it.State())
	}
	if _, err := eng.At(10, func() { n.Restart() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt != 11 {
		t.Errorf("done at %v, want 11", doneAt)
	}
}

func TestCrashAndRestartAreIdempotent(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	n.Restart() // restart while up: no-op
	n.Crash()
	n.Crash() // second crash: no-op
	if n.Crashes() != 1 {
		t.Errorf("crashes = %d, want 1", n.Crashes())
	}
	n.Restart()
	if n.Down() {
		t.Error("node down after restart")
	}
}

func TestCrashMultiServer(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithServers(2))
	done := 0
	for i, ex := range []simtime.Duration{4, 6} {
		it := mkItem(t, string(rune('a'+i)), 100, ex)
		it.OnDone = func(_ *Item, _ simtime.Time) { done++ }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.At(2, func() { n.Crash() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(3, func() { n.Restart() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done != 2 {
		t.Errorf("completed %d items, want 2", done)
	}
	// Both restarted stretches redo full demand: finish at 3+4 and 3+6.
	if now := eng.Now(); now != 9 {
		t.Errorf("drained at %v, want 9", now)
	}
}

func TestRateUtilizationStaysBounded(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	n.SetRate(0.25)
	for i := 0; i < 5; i++ {
		if err := n.Submit(mkItem(t, "", 100, 1)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if u := n.Utilization(); u < 0.99 || u > 1.0+1e-9 || math.IsNaN(u) {
		t.Errorf("utilization = %v, want ~1", u)
	}
}
