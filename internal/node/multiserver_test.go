package node

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/task"
)

func TestMultiServerParallelService(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithServers(2))
	var finishes []simtime.Time
	for i := 0; i < 2; i++ {
		it := mkItem(t, "j", 10, 4)
		it.OnDone = func(_ *Item, at simtime.Time) { finishes = append(finishes, at) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	// Both run concurrently: both finish at 4.
	if len(finishes) != 2 || finishes[0] != 4 || finishes[1] != 4 {
		t.Errorf("finishes = %v, want both at 4", finishes)
	}
	if bt := n.BusyTime(); math.Abs(float64(bt)-8) > 1e-9 {
		t.Errorf("busy time = %v, want 8 (2 servers x 4)", bt)
	}
	// Utilization normalises by capacity: 8 work / (4 time x 2 servers) = 1.
	if u := n.Utilization(); math.Abs(u-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestMultiServerThirdJobWaits(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithServers(2))
	var third simtime.Time
	for i := 0; i < 2; i++ {
		if err := n.Submit(mkItem(t, "front", 10, 4)); err != nil {
			t.Fatal(err)
		}
	}
	it := mkItem(t, "third", 10, 1)
	it.OnDone = func(_ *Item, at simtime.Time) { third = at }
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	if n.QueueLen() != 1 {
		t.Errorf("queue = %d, want 1 (two in service)", n.QueueLen())
	}
	eng.Run()
	if third != 5 {
		t.Errorf("third finished at %v, want 5 (waits for a server at 4)", third)
	}
}

func TestMultiServerRemoveInService(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithServers(2))
	a := mkItem(t, "a", 10, 100)
	b := mkItem(t, "b", 10, 100)
	for _, it := range []*Item{a, b} {
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.At(5, func() {
		if !n.Remove(a) {
			t.Error("Remove(a) failed")
		}
		if !n.Busy() {
			t.Error("node should still be busy with b")
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(6)
	// Busy time at t=6: a served 5, b served 6.
	if bt := n.BusyTime(); math.Abs(float64(bt)-11) > 1e-9 {
		t.Errorf("busy = %v, want 11", bt)
	}
}

func TestNewValidation(t *testing.T) {
	eng := des.New()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero servers", func() { New(0, eng, WithServers(0)) })
	mustPanic("preemptive multi-server", func() {
		New(0, eng, WithServers(2), WithPreemption())
	})
	if n := New(0, eng, WithServers(3)); n.Servers() != 3 {
		t.Errorf("Servers = %d, want 3", n.Servers())
	}
}

// TestMMCTheory drives a 3-server node with Poisson arrivals and checks
// the mean wait against the Erlang C formula.
func TestMMCTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda  = 2.0
		mu      = 1.0
		servers = 3
		horizon = 60000.0
	)
	eng := des.New()
	n := New(0, eng, WithServers(servers))
	stream := rng.NewStream(7)
	var totalWait float64
	var count int64

	var arrive func()
	arrive = func() {
		tk := task.MustSimple("", 0, simtime.Duration(stream.Exp(1/mu)))
		tk.VirtualDeadline = eng.Now().Add(simtime.Duration(stream.Uniform(1, 5)))
		tk.RealDeadline = tk.VirtualDeadline
		tk.Arrival = eng.Now()
		it := NewItem(tk)
		it.OnDone = func(done *Item, at simtime.Time) {
			wait := float64(at.Sub(done.Task.Arrival)) - float64(done.Task.Exec)
			totalWait += wait
			count++
		}
		if err := n.Submit(it); err != nil {
			t.Error(err)
		}
		next := eng.Now().Add(simtime.Duration(stream.Exp(1 / lambda)))
		if next.Before(simtime.Time(horizon)) {
			if _, err := eng.At(next, arrive); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := eng.At(0.01, arrive); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	got := totalWait / float64(count)
	q := queueing.MMC{Lambda: lambda, Mu: mu, Servers: servers}
	want, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.05 {
		t.Errorf("mean wait = %v, Erlang C gives %v", got, want)
	}
}
