// Package node models one processing component of the distributed system
// (Section 3.2): a single non-preemptive server fed by a deadline-ordered
// queue, managed by an independent local real-time scheduler.
//
// Nodes know nothing about global tasks. They see only Items — simple
// subtasks or local tasks with a virtual deadline (and possibly a GF
// priority boost) — and serve one at a time, choosing the next by the
// configured queue policy. This independence is a core premise of the
// paper: there is no global scheduler and nodes do not collaborate.
//
// Two abortion mechanisms from Section 7.3 are supported:
//
//   - Process-manager abortion: the owner calls Remove, which discards a
//     queued item or kills the one in service.
//   - Local-scheduler abortion (WithLocalAbort): at dispatch the node
//     discards any item whose *virtual* deadline has already passed and
//     notifies the owner via the item's OnLocalAbort callback.
package node

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/simtime"
	"repro/internal/task"
)

// Errors returned by Submit.
var (
	ErrNotSimple   = errors.New("node: only simple subtasks can be submitted")
	ErrResubmitted = errors.New("node: item already submitted")
)

// ItemState tracks an item through its life cycle at a node.
type ItemState int

// Item states.
const (
	StateNew ItemState = iota + 1
	StateQueued
	StateServing
	StateDone
	StateAborted
)

// String returns the state name.
func (s ItemState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateQueued:
		return "queued"
	case StateServing:
		return "serving"
	case StateDone:
		return "done"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("ItemState(%d)", int(s))
	}
}

// Item is one unit of work submitted to a node: a local task or a simple
// subtask of a global task. The embedded task carries the timing
// attributes (virtual deadline, priority boost, execution time).
type Item struct {
	Task *task.Task

	// OnDone is invoked when service completes, before the node picks its
	// next item. Optional.
	OnDone func(it *Item, at simtime.Time)
	// OnLocalAbort is invoked when the local scheduler discards the item
	// because its virtual deadline expired (local-abort mode only).
	// Optional.
	OnLocalAbort func(it *Item, at simtime.Time)

	state     ItemState
	seq       uint64
	index     int // heap index; -1 when not queued
	service   des.Event
	owner     *Node
	remaining simtime.Duration // unexecuted service demand
	startedAt simtime.Time     // start of the current service stretch
}

// NewItem wraps a simple subtask for submission.
func NewItem(t *task.Task) *Item {
	return &Item{Task: t, state: StateNew, index: -1, remaining: t.Exec}
}

// State returns the item's current life-cycle state.
func (it *Item) State() ItemState { return it.state }

// Observer receives scheduling events from a node, e.g. for tracing or
// visualisation. All callbacks run synchronously on the simulation
// goroutine; implementations must be cheap. Any method may be a no-op.
type Observer interface {
	// OnEnqueue fires when an item joins the waiting queue.
	OnEnqueue(n *Node, it *Item, at simtime.Time)
	// OnStart fires when service of an item begins (or resumes after
	// preemption).
	OnStart(n *Node, it *Item, at simtime.Time)
	// OnFinish fires when service completes.
	OnFinish(n *Node, it *Item, at simtime.Time)
	// OnAbort fires when an item is discarded (local abort or removal),
	// including the killing of an in-service item.
	OnAbort(n *Node, it *Item, at simtime.Time)
	// OnPreempt fires when an in-service item is suspended.
	OnPreempt(n *Node, it *Item, at simtime.Time)
}

// Policy orders the waiting queue. Less reports whether a should be served
// before b.
type Policy interface {
	Less(a, b *Item) bool
	Name() string
}

// EDF is the earliest-deadline-first policy of the paper's footnote 3:
// tasks are ordered by increasing virtual deadline, with the GF priority
// band ahead of everything else and FIFO tie-breaking. EDF within each
// band preserves the paper's "servicing order is preserved individually
// within the classes of globals and locals" property.
type EDF struct{}

// Less implements Policy.
func (EDF) Less(a, b *Item) bool {
	if a.Task.PriorityBoost != b.Task.PriorityBoost {
		return a.Task.PriorityBoost
	}
	if a.Task.VirtualDeadline != b.Task.VirtualDeadline {
		return a.Task.VirtualDeadline.Before(b.Task.VirtualDeadline)
	}
	return a.seq < b.seq
}

// Name implements Policy.
func (EDF) Name() string { return "EDF" }

// FIFO serves items in arrival order, ignoring deadlines. It exists as an
// ablation baseline: it shows how much of the paper's result depends on
// deadline-aware local scheduling at all.
type FIFO struct{}

// Less implements Policy.
func (FIFO) Less(a, b *Item) bool { return a.seq < b.seq }

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Node is a single-server processing component.
type Node struct {
	id         int
	eng        *des.Engine
	policy     Policy
	localAbort bool
	preemptive bool
	observer   Observer

	queue   itemHeap
	serving map[*Item]struct{}
	servers int
	seq     uint64

	// Fault-injection state (scenario harness): a crashed node stops
	// dispatching, and a degraded node serves at rate work units per time
	// unit (1 = nominal).
	down bool
	rate float64

	busy    simtime.Duration
	served  uint64
	aborted uint64
	crashes uint64

	// Time-weighted queue-length accounting (waiting items only).
	qlenIntegral float64      // ∫ len(queue) dt
	qlenSince    simtime.Time // last instant the integral was updated
}

// noteQueueChange folds the elapsed stretch at the previous queue length
// into the integral. Call it BEFORE any change to len(n.queue).
func (n *Node) noteQueueChange() {
	now := n.eng.Now()
	n.qlenIntegral += float64(len(n.queue)) * float64(now.Sub(n.qlenSince))
	n.qlenSince = now
}

// MeanQueueLength returns the time-averaged number of waiting items
// (excluding the one in service) since the start of the simulation.
func (n *Node) MeanQueueLength() float64 {
	now := n.eng.Now()
	if now <= 0 {
		return 0
	}
	total := n.qlenIntegral + float64(len(n.queue))*float64(now.Sub(n.qlenSince))
	return total / float64(now)
}

// Option configures a Node.
type Option func(*Node)

// WithPolicy selects the queue policy (default EDF).
func WithPolicy(p Policy) Option {
	return func(n *Node) { n.policy = p }
}

// WithLocalAbort makes the local scheduler discard items whose virtual
// deadline has passed when they reach the head of the queue (Section 7.3,
// abortion case 2).
func WithLocalAbort() Option {
	return func(n *Node) { n.localAbort = true }
}

// WithPreemption makes the server preemptive: a newly submitted item that
// outranks the one in service suspends it (work already done is kept and
// the item resumes later with its residual demand). The paper's model is
// non-preemptive; this option supports the preemption ablation.
func WithPreemption() Option {
	return func(n *Node) { n.preemptive = true }
}

// WithObserver attaches a scheduling-event observer (e.g. a tracer).
func WithObserver(obs Observer) Option {
	return func(n *Node) { n.observer = obs }
}

// WithServers gives the node c identical servers sharing one queue (an
// M/M/c station). The paper's components are single servers (c = 1, the
// default); multi-server nodes extend the model to pooled resources.
// Combining WithServers(c > 1) with WithPreemption is not supported.
func WithServers(c int) Option {
	return func(n *Node) { n.servers = c }
}

// New returns a node attached to the simulation engine. It panics on an
// invalid option combination (a programming error, caught at setup).
func New(id int, eng *des.Engine, opts ...Option) *Node {
	n := &Node{id: id, eng: eng, policy: EDF{}, servers: 1, rate: 1,
		serving: make(map[*Item]struct{})}
	for _, o := range opts {
		o(n)
	}
	if n.servers < 1 {
		panic(fmt.Sprintf("node: invalid server count %d", n.servers))
	}
	if n.preemptive && n.servers > 1 {
		panic("node: preemption is only supported for single-server nodes")
	}
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() int { return n.id }

// QueueLen returns the number of waiting items (excluding the one in
// service).
func (n *Node) QueueLen() int { return len(n.queue) }

// Busy reports whether any server is occupied.
func (n *Node) Busy() bool { return len(n.serving) > 0 }

// Servers returns the number of servers at this node.
func (n *Node) Servers() int { return n.servers }

// Served returns the number of items whose service completed.
func (n *Node) Served() uint64 { return n.served }

// AbortedCount returns the number of items discarded at this node (by
// either abortion mechanism).
func (n *Node) AbortedCount() uint64 { return n.aborted }

// BusyTime returns the cumulative service time delivered across all
// servers, including the elapsed parts of items currently in service.
func (n *Node) BusyTime() simtime.Duration {
	total := n.busy
	now := n.eng.Now()
	for it := range n.serving {
		total += now.Sub(it.startedAt)
	}
	return total
}

// Utilization returns BusyTime divided by elapsed capacity
// (servers x simulated time).
func (n *Node) Utilization() float64 {
	now := n.eng.Now()
	if now <= 0 {
		return 0
	}
	return float64(n.BusyTime()) / (float64(now) * float64(n.servers))
}

// Policy returns the queue policy the node orders its waiting items by.
func (n *Node) Policy() Policy { return n.policy }

// Rate returns the current service rate (work units per time unit;
// 1 = nominal speed).
func (n *Node) Rate() float64 { return n.rate }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Crashes returns the number of Crash calls that took the node down.
func (n *Node) Crashes() uint64 { return n.crashes }

// SetRate changes the node's service rate to r > 0 (fault injection:
// r < 1 models a degraded component, r > 1 a fast one). Items in service
// keep the work they have completed so far; their completion is
// rescheduled for the residual demand at the new rate. Rate changes are
// deterministic: they take effect at the current simulated instant.
func (n *Node) SetRate(r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("node: invalid service rate %v", r))
	}
	if r == n.rate {
		return
	}
	now := n.eng.Now()
	for _, it := range n.servingInOrder() {
		n.eng.Cancel(it.service)
		elapsed := now.Sub(it.startedAt)
		it.remaining -= elapsed.Scale(n.rate)
		if it.remaining < 0 {
			it.remaining = 0
		}
		n.busy += elapsed
		it.startedAt = now
		ev, err := n.eng.After(it.remaining.Scale(1/r), func() { n.complete(it) })
		if err != nil {
			panic(fmt.Sprintf("node: reschedule service at new rate: %v", err))
		}
		it.service = ev
	}
	n.rate = r
}

// servingInOrder returns the in-service items in submission order. Fault
// injection must not iterate the serving map directly: map order is
// random per process, and the order of cancellations and re-insertions
// is visible in the event trace, which must be reproducible.
func (n *Node) servingInOrder() []*Item {
	if len(n.serving) == 0 {
		return nil
	}
	out := make([]*Item, 0, len(n.serving))
	for it := range n.serving {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Crash takes the node down (fault injection). Items in service lose the
// progress of their current service stretch and return to the waiting
// queue (the server was occupied, so the lost stretch still counts as
// busy time); queued items stay queued. No service happens until Restart.
// Crashing a crashed node is a no-op.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.crashes++
	now := n.eng.Now()
	for _, it := range n.servingInOrder() {
		n.eng.Cancel(it.service)
		it.service = des.Event{}
		n.busy += now.Sub(it.startedAt)
		it.state = StateQueued
		n.noteQueueChange()
		heap.Push(&n.queue, it)
		delete(n.serving, it)
		if n.observer != nil {
			n.observer.OnPreempt(n, it, now)
		}
	}
}

// Restart brings a crashed node back up and resumes dispatching.
// Restarting a live node is a no-op.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.dispatch()
}

// Submit hands an item to the node's scheduler. The item must wrap a
// simple subtask and must not be live at any node.
func (n *Node) Submit(it *Item) error {
	if it == nil || it.Task == nil {
		return fmt.Errorf("%w: nil item", ErrNotSimple)
	}
	if !it.Task.IsSimple() {
		return fmt.Errorf("%w: %q is %v", ErrNotSimple, it.Task.Name, it.Task.Kind)
	}
	if it.state == StateQueued || it.state == StateServing {
		return fmt.Errorf("%w: %q", ErrResubmitted, it.Task.Name)
	}
	it.state = StateQueued
	it.seq = n.seq
	it.owner = n
	n.seq++
	n.noteQueueChange()
	heap.Push(&n.queue, it)
	if n.observer != nil {
		n.observer.OnEnqueue(n, it, n.eng.Now())
	}
	if n.preemptive {
		if cur := n.soleServing(); cur != nil && n.policy.Less(it, cur) {
			n.preempt(cur)
		}
	}
	n.dispatch()
	return nil
}

// soleServing returns the single in-service item (preemption implies a
// single server), or nil when idle.
func (n *Node) soleServing() *Item {
	for it := range n.serving {
		return it
	}
	return nil
}

// preempt suspends the item in service, preserving its residual demand,
// and returns it to the queue.
func (n *Node) preempt(cur *Item) {
	n.eng.Cancel(cur.service)
	cur.service = des.Event{}
	elapsed := n.eng.Now().Sub(cur.startedAt)
	cur.remaining -= elapsed.Scale(n.rate)
	if cur.remaining < 0 {
		cur.remaining = 0
	}
	n.busy += elapsed
	cur.state = StateQueued
	n.noteQueueChange()
	heap.Push(&n.queue, cur)
	delete(n.serving, cur)
	if n.observer != nil {
		n.observer.OnPreempt(n, cur, n.eng.Now())
	}
}

// Remove takes a live item away from the node: a queued item is discarded,
// an in-service item is killed and the server freed. It reports whether
// the item was found. This implements process-manager abortion.
func (n *Node) Remove(it *Item) bool {
	if it == nil || it.owner != n {
		return false
	}
	switch it.state {
	case StateQueued:
		n.noteQueueChange()
		heap.Remove(&n.queue, it.index)
		it.state = StateAborted
		n.aborted++
		if n.observer != nil {
			n.observer.OnAbort(n, it, n.eng.Now())
		}
		return true
	case StateServing:
		n.eng.Cancel(it.service)
		it.service = des.Event{}
		it.state = StateAborted
		n.aborted++
		n.busy += n.eng.Now().Sub(it.startedAt)
		delete(n.serving, it)
		if n.observer != nil {
			n.observer.OnAbort(n, it, n.eng.Now())
		}
		n.dispatch()
		return true
	default:
		return false
	}
}

// dispatch starts service on the best waiting items while servers are
// idle. A crashed node dispatches nothing until Restart.
func (n *Node) dispatch() {
	if n.down {
		return
	}
	for len(n.serving) < n.servers && len(n.queue) > 0 {
		n.noteQueueChange()
		it, ok := heap.Pop(&n.queue).(*Item)
		if !ok {
			panic("node: queue contained a non-item")
		}
		it.index = -1
		now := n.eng.Now()
		if n.localAbort && it.Task.VirtualDeadline.Before(now) {
			// Local-scheduler abortion: the deadline presented to us has
			// already passed; drop the task and tell the owner.
			it.state = StateAborted
			n.aborted++
			if n.observer != nil {
				n.observer.OnAbort(n, it, now)
			}
			if it.OnLocalAbort != nil {
				it.OnLocalAbort(it, now)
			}
			continue
		}
		it.state = StateServing
		n.serving[it] = struct{}{}
		it.startedAt = now
		if n.observer != nil {
			n.observer.OnStart(n, it, now)
		}
		ev, err := n.eng.After(it.remaining.Scale(1/n.rate), func() { n.complete(it) })
		if err != nil {
			// Exec is validated non-negative at construction; a scheduling
			// failure here is a programming error in the kernel.
			panic(fmt.Sprintf("node: schedule service completion: %v", err))
		}
		it.service = ev
	}
}

// complete finishes service of it and picks the next item.
func (n *Node) complete(it *Item) {
	now := n.eng.Now()
	it.state = StateDone
	it.service = des.Event{}
	it.Task.Finish = now
	n.busy += now.Sub(it.startedAt)
	it.remaining = 0
	n.served++
	delete(n.serving, it)
	if n.observer != nil {
		n.observer.OnFinish(n, it, now)
	}
	if it.OnDone != nil {
		it.OnDone(it, now)
	}
	n.dispatch()
}

// itemHeap orders waiting items by the node's policy. The policy pointer
// lives on the items' owner, so Less dereferences through the first item.
type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	return h[i].owner.policy.Less(h[i], h[j])
}

func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *itemHeap) Push(x any) {
	it, ok := x.(*Item)
	if !ok {
		panic("node: pushed a non-item")
	}
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
