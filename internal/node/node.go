// Package node models one processing component of the distributed system
// (Section 3.2): a single non-preemptive server fed by a deadline-ordered
// queue, managed by an independent local real-time scheduler.
//
// Nodes know nothing about global tasks. They see only Items — simple
// subtasks or local tasks with a virtual deadline (and possibly a GF
// priority boost) — and serve one at a time, choosing the next by the
// configured queue policy. This independence is a core premise of the
// paper: there is no global scheduler and nodes do not collaborate.
//
// Two abortion mechanisms from Section 7.3 are supported:
//
//   - Process-manager abortion: the owner calls Remove, which discards a
//     queued item or kills the one in service.
//   - Local-scheduler abortion (WithLocalAbort): at dispatch the node
//     discards any item whose *virtual* deadline has already passed and
//     notifies the owner via the item's OnLocalAbort callback.
//
// # Hot path
//
// The waiting queue is an inline generation-tagged 4-ary indexed min-heap
// in the style of the internal/des calendar: no container/heap interface
// boxing, the built-in policies (EDF, FIFO, LLF, SJF) compare through a
// devirtualized switch (custom policies keep the interface slow path),
// the earliest item peeks in O(1), and abort-removal is O(log n) through
// the item's heap index. Items are pooled per node (AcquireItem /
// RecycleItem) with generation-tagged ItemRef handles, and service
// completions are scheduled through des.AfterCall with a shared
// package-level callback, so the steady submit/serve/complete cycle
// performs no heap allocation. docs/PERFORMANCE.md describes the design
// and the determinism constraints it honors.
package node

import (
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/simtime"
	"repro/internal/task"
)

// Errors returned by Submit.
var (
	ErrNotSimple   = errors.New("node: only simple subtasks can be submitted")
	ErrResubmitted = errors.New("node: item already submitted")
)

// ItemState tracks an item through its life cycle at a node.
type ItemState int

// Item states. The zero ItemState marks a recycled pool item and is never
// observable through a live item.
const (
	StateNew ItemState = iota + 1
	StateQueued
	StateServing
	StateDone
	StateAborted
)

// String returns the state name.
func (s ItemState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateQueued:
		return "queued"
	case StateServing:
		return "serving"
	case StateDone:
		return "done"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("ItemState(%d)", int(s))
	}
}

// Hooks receives an item's life-cycle callbacks. It is the
// allocation-free alternative to the OnDone/OnLocalAbort closure fields:
// the owner stores one pooled record per item and the node calls through
// the interface, so no per-item closures are built. When both Hooks and
// the closure fields are set, Hooks wins.
type Hooks interface {
	// ItemDone is invoked when service completes, before the node picks
	// its next item.
	ItemDone(it *Item, at simtime.Time)
	// ItemLocalAbort is invoked when the local scheduler discards the
	// item because its virtual deadline expired (local-abort mode only).
	ItemLocalAbort(it *Item, at simtime.Time)
}

// Item is one unit of work submitted to a node: a local task or a simple
// subtask of a global task. The embedded task carries the timing
// attributes (virtual deadline, priority boost, execution time).
//
// Items come from two places: NewItem allocates a fresh one (simple,
// garbage-collected — fine for tests and demos), and Node.AcquireItem
// recycles one from the node's pool (the process manager's hot path).
// Pooled items are generation-tagged: RecycleItem bumps the generation,
// so any ItemRef taken earlier goes stale and can never reach the item's
// next incarnation.
type Item struct {
	Task *task.Task

	// OnDone is invoked when service completes, before the node picks its
	// next item. Optional; prefer Hooks on hot paths.
	OnDone func(it *Item, at simtime.Time)
	// OnLocalAbort is invoked when the local scheduler discards the item
	// because its virtual deadline expired (local-abort mode only).
	// Optional; prefer Hooks on hot paths.
	OnLocalAbort func(it *Item, at simtime.Time)
	// Hooks receives both callbacks through one interface value. Optional.
	Hooks Hooks

	state     ItemState
	gen       uint32
	seq       uint64
	index     int // heap index; -1 when not queued
	service   des.Event
	owner     *Node
	remaining simtime.Duration // unexecuted service demand
	startedAt simtime.Time     // start of the current service stretch
}

// NewItem wraps a simple subtask for submission.
func NewItem(t *task.Task) *Item {
	return &Item{Task: t, state: StateNew, index: -1, remaining: t.Exec}
}

// State returns the item's current life-cycle state.
func (it *Item) State() ItemState { return it.state }

// Generation returns the item's pool generation. It increments each time
// the item is recycled; observers that cache per-item state must key it
// by (item, generation) so a recycled item is not mistaken for its
// previous incarnation.
func (it *Item) Generation() uint32 { return it.gen }

// Ref returns a generation-tagged handle to the item. The handle resolves
// to the item only while this incarnation is live; after RecycleItem it
// degrades to nil, so a stale handle can never touch somebody else's
// item.
func (it *Item) Ref() ItemRef { return ItemRef{it: it, gen: it.gen} }

// ItemRef is a by-value generation-tagged handle to an Item (see
// Item.Ref). The zero ItemRef resolves to nil.
type ItemRef struct {
	it  *Item
	gen uint32
}

// Item resolves the handle, or returns nil when the handle is zero or
// stale (the item has been recycled since the handle was taken).
func (r ItemRef) Item() *Item {
	if r.it == nil || r.it.gen != r.gen {
		return nil
	}
	return r.it
}

// Observer receives scheduling events from a node, e.g. for tracing or
// visualisation. All callbacks run synchronously on the simulation
// goroutine; implementations must be cheap. Any method may be a no-op.
type Observer interface {
	// OnEnqueue fires when an item joins the waiting queue.
	OnEnqueue(n *Node, it *Item, at simtime.Time)
	// OnStart fires when service of an item begins (or resumes after
	// preemption).
	OnStart(n *Node, it *Item, at simtime.Time)
	// OnFinish fires when service completes.
	OnFinish(n *Node, it *Item, at simtime.Time)
	// OnAbort fires when an item is discarded (local abort or removal),
	// including the killing of an in-service item.
	OnAbort(n *Node, it *Item, at simtime.Time)
	// OnPreempt fires when an in-service item is suspended.
	OnPreempt(n *Node, it *Item, at simtime.Time)
}

// Policy orders the waiting queue. Less reports whether a should be served
// before b.
//
// The built-in policies (EDF, FIFO, LLF, SJF) are recognised by type at
// node construction and compared inline on the hot path; a custom Policy
// still works through the interface. Every ordering must be total — the
// built-ins tie-break on submission order — so the dispatch sequence is
// independent of the heap's internal layout.
type Policy interface {
	Less(a, b *Item) bool
	Name() string
}

// EDF is the earliest-deadline-first policy of the paper's footnote 3:
// tasks are ordered by increasing virtual deadline, with the GF priority
// band ahead of everything else and FIFO tie-breaking. EDF within each
// band preserves the paper's "servicing order is preserved individually
// within the classes of globals and locals" property.
type EDF struct{}

// Less implements Policy.
func (EDF) Less(a, b *Item) bool {
	if a.Task.PriorityBoost != b.Task.PriorityBoost {
		return a.Task.PriorityBoost
	}
	if a.Task.VirtualDeadline != b.Task.VirtualDeadline {
		return a.Task.VirtualDeadline.Before(b.Task.VirtualDeadline)
	}
	return a.seq < b.seq
}

// Name implements Policy.
func (EDF) Name() string { return "EDF" }

// FIFO serves items in arrival order, ignoring deadlines. It exists as an
// ablation baseline: it shows how much of the paper's result depends on
// deadline-aware local scheduling at all.
type FIFO struct{}

// Less implements Policy.
func (FIFO) Less(a, b *Item) bool { return a.seq < b.seq }

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// policyKind tags the built-in policies for devirtualized comparison.
type policyKind uint8

const (
	policyCustom policyKind = iota
	policyEDF
	policyFIFO
	policyLLF
	policySJF
)

// kindOf recognises the built-in policies by concrete type.
func kindOf(p Policy) policyKind {
	switch p.(type) {
	case EDF:
		return policyEDF
	case FIFO:
		return policyFIFO
	case LLF:
		return policyLLF
	case SJF:
		return policySJF
	default:
		return policyCustom
	}
}

// Node is a single-server processing component.
type Node struct {
	id         int
	eng        *des.Engine
	policy     Policy
	pkind      policyKind
	localAbort bool
	preemptive bool
	observer   Observer

	queue   []*Item // inline 4-ary indexed min-heap, ordered by policy
	serving []*Item // in-service items in dispatch order (len <= servers)
	pool    []*Item // recycled items (AcquireItem / RecycleItem)
	scratch []*Item // reusable snapshot buffer for Crash/SetRate
	servers int
	seq     uint64

	// Fault-injection state (scenario harness): a crashed node stops
	// dispatching, and a degraded node serves at rate work units per time
	// unit (1 = nominal).
	down bool
	rate float64

	busy    simtime.Duration
	served  uint64
	aborted uint64
	crashes uint64

	// Time-weighted queue-length accounting (waiting items only).
	qlenIntegral float64      // ∫ len(queue) dt
	qlenSince    simtime.Time // last instant the integral was updated
}

// noteQueueChange folds the elapsed stretch at the previous queue length
// into the integral. Call it BEFORE any change to len(n.queue).
func (n *Node) noteQueueChange() {
	now := n.eng.Now()
	n.qlenIntegral += float64(len(n.queue)) * float64(now.Sub(n.qlenSince))
	n.qlenSince = now
}

// MeanQueueLength returns the time-averaged number of waiting items
// (excluding the one in service) since the start of the simulation.
func (n *Node) MeanQueueLength() float64 {
	now := n.eng.Now()
	if now <= 0 {
		return 0
	}
	total := n.qlenIntegral + float64(len(n.queue))*float64(now.Sub(n.qlenSince))
	return total / float64(now)
}

// Option configures a Node.
type Option func(*Node)

// WithPolicy selects the queue policy (default EDF).
func WithPolicy(p Policy) Option {
	return func(n *Node) { n.policy = p }
}

// WithLocalAbort makes the local scheduler discard items whose virtual
// deadline has passed when they reach the head of the queue (Section 7.3,
// abortion case 2).
func WithLocalAbort() Option {
	return func(n *Node) { n.localAbort = true }
}

// WithPreemption makes the server preemptive: a newly submitted item that
// outranks the one in service suspends it (work already done is kept and
// the item resumes later with its residual demand). The paper's model is
// non-preemptive; this option supports the preemption ablation.
func WithPreemption() Option {
	return func(n *Node) { n.preemptive = true }
}

// WithObserver attaches a scheduling-event observer (e.g. a tracer).
func WithObserver(obs Observer) Option {
	return func(n *Node) { n.observer = obs }
}

// WithServers gives the node c identical servers sharing one queue (an
// M/M/c station). The paper's components are single servers (c = 1, the
// default); multi-server nodes extend the model to pooled resources.
// Combining WithServers(c > 1) with WithPreemption is not supported.
func WithServers(c int) Option {
	return func(n *Node) { n.servers = c }
}

// WithRate sets the node's baseline service rate (work units per time
// unit; default 1, the paper's homogeneous model). Heterogeneous fleets
// give each node its own baseline; SetRate still changes the rate
// mid-run for fault injection.
func WithRate(r float64) Option {
	return func(n *Node) { n.rate = r }
}

// New returns a node attached to the simulation engine. It panics on an
// invalid option combination (a programming error, caught at setup).
func New(id int, eng *des.Engine, opts ...Option) *Node {
	n := &Node{id: id, eng: eng, policy: EDF{}, servers: 1, rate: 1}
	for _, o := range opts {
		o(n)
	}
	n.pkind = kindOf(n.policy)
	if n.servers < 1 {
		panic(fmt.Sprintf("node: invalid server count %d", n.servers))
	}
	if n.rate <= 0 {
		panic(fmt.Sprintf("node: invalid service rate %v", n.rate))
	}
	if n.preemptive && n.servers > 1 {
		panic("node: preemption is only supported for single-server nodes")
	}
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() int { return n.id }

// QueueLen returns the number of waiting items (excluding the one in
// service).
func (n *Node) QueueLen() int { return len(n.queue) }

// Busy reports whether any server is occupied.
func (n *Node) Busy() bool { return len(n.serving) > 0 }

// Servers returns the number of servers at this node.
func (n *Node) Servers() int { return n.servers }

// Served returns the number of items whose service completed.
func (n *Node) Served() uint64 { return n.served }

// AbortedCount returns the number of items discarded at this node (by
// either abortion mechanism).
func (n *Node) AbortedCount() uint64 { return n.aborted }

// BusyTime returns the cumulative service time delivered across all
// servers, including the elapsed parts of items currently in service.
func (n *Node) BusyTime() simtime.Duration {
	total := n.busy
	now := n.eng.Now()
	for _, it := range n.serving {
		total += now.Sub(it.startedAt)
	}
	return total
}

// Utilization returns BusyTime divided by elapsed capacity
// (servers x simulated time).
func (n *Node) Utilization() float64 {
	now := n.eng.Now()
	if now <= 0 {
		return 0
	}
	return float64(n.BusyTime()) / (float64(now) * float64(n.servers))
}

// Policy returns the queue policy the node orders its waiting items by.
func (n *Node) Policy() Policy { return n.policy }

// Rate returns the current service rate (work units per time unit;
// 1 = nominal speed).
func (n *Node) Rate() float64 { return n.rate }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Crashes returns the number of Crash calls that took the node down.
func (n *Node) Crashes() uint64 { return n.crashes }

// AcquireItem returns an item wrapping t, recycled from the node's pool
// when one is free. Pair it with RecycleItem once the item has resolved
// and no references to it remain; the steady acquire/serve/recycle cycle
// then allocates nothing.
func (n *Node) AcquireItem(t *task.Task) *Item {
	var it *Item
	if k := len(n.pool); k > 0 {
		it = n.pool[k-1]
		n.pool[k-1] = nil
		n.pool = n.pool[:k-1]
	} else {
		it = &Item{}
	}
	it.Task = t
	it.state = StateNew
	it.index = -1
	it.remaining = t.Exec
	return it
}

// RecycleItem returns a resolved item to the node's pool. The item must
// not be queued or in service, and the caller must hold the only live
// references; generation-tagged ItemRef handles taken earlier go stale
// at this point. Recycling an already-recycled item panics (a
// double-release is a programming error).
func (n *Node) RecycleItem(it *Item) {
	if it == nil {
		return
	}
	switch it.state {
	case StateQueued, StateServing:
		panic(fmt.Sprintf("node: recycling a live item (%v)", it.state))
	case 0:
		panic("node: item recycled twice")
	}
	it.gen++
	it.state = 0
	it.Task = nil
	it.OnDone = nil
	it.OnLocalAbort = nil
	it.Hooks = nil
	it.service = des.Event{}
	it.remaining = 0
	n.pool = append(n.pool, it)
}

// SetRate changes the node's service rate to r > 0 (fault injection:
// r < 1 models a degraded component, r > 1 a fast one). Items in service
// keep the work they have completed so far; their completion is
// rescheduled for the residual demand at the new rate. Rate changes are
// deterministic: they take effect at the current simulated instant.
func (n *Node) SetRate(r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("node: invalid service rate %v", r))
	}
	if r == n.rate {
		return
	}
	now := n.eng.Now()
	for _, it := range n.servingInOrder() {
		n.eng.Cancel(it.service)
		elapsed := now.Sub(it.startedAt)
		it.remaining -= elapsed.Scale(n.rate)
		if it.remaining < 0 {
			it.remaining = 0
		}
		n.busy += elapsed
		it.startedAt = now
		n.eng.SetDomain(n.id)
		ev, err := n.eng.AfterCall(it.remaining.Scale(1/r), serviceDone, it)
		if err != nil {
			panic(fmt.Sprintf("node: reschedule service at new rate: %v", err))
		}
		it.service = ev
	}
	n.rate = r
}

// servingInOrder snapshots the in-service items in submission order into
// the node's scratch buffer. Fault injection must not iterate n.serving
// directly: it mutates the slice mid-loop, and the order of cancellations
// and re-insertions is visible in the event trace, which must be
// reproducible — hence the explicit sort by submission sequence.
func (n *Node) servingInOrder() []*Item {
	n.scratch = append(n.scratch[:0], n.serving...)
	out := n.scratch
	// Insertion sort by seq: at most a handful of servers.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].seq < out[j-1].seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// removeServing takes it out of the in-service list, preserving dispatch
// order.
func (n *Node) removeServing(it *Item) {
	for i, v := range n.serving {
		if v == it {
			last := len(n.serving) - 1
			copy(n.serving[i:], n.serving[i+1:])
			n.serving[last] = nil
			n.serving = n.serving[:last]
			return
		}
	}
}

// Crash takes the node down (fault injection). Items in service lose the
// progress of their current service stretch and return to the waiting
// queue (the server was occupied, so the lost stretch still counts as
// busy time); queued items stay queued. No service happens until Restart.
// Crashing a crashed node is a no-op.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.crashes++
	now := n.eng.Now()
	for _, it := range n.servingInOrder() {
		n.eng.Cancel(it.service)
		it.service = des.Event{}
		n.busy += now.Sub(it.startedAt)
		it.state = StateQueued
		n.noteQueueChange()
		n.qPush(it)
		n.removeServing(it)
		if n.observer != nil {
			n.observer.OnPreempt(n, it, now)
		}
	}
}

// Restart brings a crashed node back up and resumes dispatching.
// Restarting a live node is a no-op.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.dispatch()
}

// Submit hands an item to the node's scheduler. The item must wrap a
// simple subtask and must not be live at any node.
func (n *Node) Submit(it *Item) error {
	if it == nil || it.Task == nil {
		return fmt.Errorf("%w: nil item", ErrNotSimple)
	}
	if !it.Task.IsSimple() {
		return fmt.Errorf("%w: %q is %v", ErrNotSimple, it.Task.Name, it.Task.Kind)
	}
	if it.state == StateQueued || it.state == StateServing {
		return fmt.Errorf("%w: %q", ErrResubmitted, it.Task.Name)
	}
	it.state = StateQueued
	it.seq = n.seq
	it.owner = n
	n.seq++
	n.noteQueueChange()
	n.qPush(it)
	if n.observer != nil {
		n.observer.OnEnqueue(n, it, n.eng.Now())
	}
	if n.preemptive {
		if cur := n.soleServing(); cur != nil && n.less(it, cur) {
			n.preempt(cur)
		}
	}
	n.dispatch()
	return nil
}

// soleServing returns the single in-service item (preemption implies a
// single server), or nil when idle.
func (n *Node) soleServing() *Item {
	if len(n.serving) > 0 {
		return n.serving[0]
	}
	return nil
}

// preempt suspends the item in service, preserving its residual demand,
// and returns it to the queue.
func (n *Node) preempt(cur *Item) {
	n.eng.Cancel(cur.service)
	cur.service = des.Event{}
	elapsed := n.eng.Now().Sub(cur.startedAt)
	cur.remaining -= elapsed.Scale(n.rate)
	if cur.remaining < 0 {
		cur.remaining = 0
	}
	n.busy += elapsed
	cur.state = StateQueued
	n.noteQueueChange()
	n.qPush(cur)
	n.removeServing(cur)
	if n.observer != nil {
		n.observer.OnPreempt(n, cur, n.eng.Now())
	}
}

// Remove takes a live item away from the node: a queued item is discarded,
// an in-service item is killed and the server freed. It reports whether
// the item was found. This implements process-manager abortion.
func (n *Node) Remove(it *Item) bool {
	if it == nil || it.owner != n {
		return false
	}
	switch it.state {
	case StateQueued:
		n.noteQueueChange()
		n.qRemove(it.index)
		it.state = StateAborted
		n.aborted++
		if n.observer != nil {
			n.observer.OnAbort(n, it, n.eng.Now())
		}
		return true
	case StateServing:
		n.eng.Cancel(it.service)
		it.service = des.Event{}
		it.state = StateAborted
		n.aborted++
		n.busy += n.eng.Now().Sub(it.startedAt)
		n.removeServing(it)
		if n.observer != nil {
			n.observer.OnAbort(n, it, n.eng.Now())
		}
		n.dispatch()
		return true
	default:
		return false
	}
}

// RemoveRef is Remove through a generation-tagged handle: a stale handle
// (the item was recycled since the handle was taken) is a safe no-op.
func (n *Node) RemoveRef(r ItemRef) bool {
	it := r.Item()
	if it == nil {
		return false
	}
	return n.Remove(it)
}

// serviceDone is the shared completion callback scheduled for every
// service: a package-level function plus the item as argument, so
// dispatch never allocates a closure.
func serviceDone(x any) {
	it := x.(*Item)
	it.owner.complete(it)
}

// dispatch starts service on the best waiting items while servers are
// idle. A crashed node dispatches nothing until Restart.
func (n *Node) dispatch() {
	if n.down {
		return
	}
	for len(n.serving) < n.servers && len(n.queue) > 0 {
		n.noteQueueChange()
		it := n.qPop()
		now := n.eng.Now()
		if n.localAbort && it.Task.VirtualDeadline.Before(now) {
			// Local-scheduler abortion: the deadline presented to us has
			// already passed; drop the task and tell the owner.
			it.state = StateAborted
			n.aborted++
			if n.observer != nil {
				n.observer.OnAbort(n, it, now)
			}
			if it.Hooks != nil {
				it.Hooks.ItemLocalAbort(it, now)
			} else if it.OnLocalAbort != nil {
				it.OnLocalAbort(it, now)
			}
			continue
		}
		it.state = StateServing
		n.serving = append(n.serving, it)
		it.startedAt = now
		if n.observer != nil {
			n.observer.OnStart(n, it, now)
		}
		// Service completions are this node's own events: tag them so the
		// kernel flight recorder attributes them to this node domain.
		n.eng.SetDomain(n.id)
		ev, err := n.eng.AfterCall(it.remaining.Scale(1/n.rate), serviceDone, it)
		if err != nil {
			// Exec is validated non-negative at construction; a scheduling
			// failure here is a programming error in the kernel.
			panic(fmt.Sprintf("node: schedule service completion: %v", err))
		}
		it.service = ev
	}
}

// complete finishes service of it and picks the next item.
func (n *Node) complete(it *Item) {
	now := n.eng.Now()
	it.state = StateDone
	it.service = des.Event{}
	it.Task.Finish = now
	n.busy += now.Sub(it.startedAt)
	it.remaining = 0
	n.served++
	n.removeServing(it)
	if n.observer != nil {
		n.observer.OnFinish(n, it, now)
	}
	if it.Hooks != nil {
		it.Hooks.ItemDone(it, now)
	} else if it.OnDone != nil {
		it.OnDone(it, now)
	}
	n.dispatch()
}

// --- waiting-queue heap -----------------------------------------------------
//
// The waiting queue is a 4-ary indexed min-heap over the node's policy
// order. Every policy order is total (the built-ins tie-break on the
// submission sequence), so the pop sequence is a property of the order
// alone — independent of heap arity or the internal layout — which keeps
// dispatch traces bit-identical to the previous container/heap
// implementation.

// less compares two queued items in the node's policy order, inlining the
// built-in policies to avoid the interface call per comparison.
func (n *Node) less(a, b *Item) bool {
	switch n.pkind {
	case policyEDF:
		ta, tb := a.Task, b.Task
		if ta.PriorityBoost != tb.PriorityBoost {
			return ta.PriorityBoost
		}
		if ta.VirtualDeadline != tb.VirtualDeadline {
			return ta.VirtualDeadline.Before(tb.VirtualDeadline)
		}
		return a.seq < b.seq
	case policyFIFO:
		return a.seq < b.seq
	case policyLLF:
		ta, tb := a.Task, b.Task
		if ta.PriorityBoost != tb.PriorityBoost {
			return ta.PriorityBoost
		}
		la := ta.VirtualDeadline.Sub(0) - a.remaining
		lb := tb.VirtualDeadline.Sub(0) - b.remaining
		if la != lb {
			return la < lb
		}
		return a.seq < b.seq
	case policySJF:
		if a.remaining != b.remaining {
			return a.remaining < b.remaining
		}
		return a.seq < b.seq
	default:
		return n.policy.Less(a, b)
	}
}

// qPush inserts it into the waiting queue.
func (n *Node) qPush(it *Item) {
	n.queue = append(n.queue, it)
	n.siftUp(len(n.queue)-1, it)
}

// qPop removes and returns the best waiting item.
func (n *Node) qPop() *Item {
	q := n.queue
	top := q[0]
	last := len(q) - 1
	moved := q[last]
	q[last] = nil
	n.queue = q[:last]
	if last > 0 {
		n.queue[0] = moved
		moved.index = 0
		n.siftDown(0)
	}
	top.index = -1
	return top
}

// qRemove removes the item at heap index i (abort-removal through
// Item.index).
func (n *Node) qRemove(i int) *Item {
	q := n.queue
	last := len(q) - 1
	it := q[i]
	moved := q[last]
	q[last] = nil
	n.queue = q[:last]
	if i < last {
		n.queue[i] = moved
		moved.index = i
		n.siftDown(i)
		if moved.index == i {
			n.siftUp(i, moved)
		}
	}
	it.index = -1
	return it
}

// siftUp moves it (currently at index i) toward the root to its place.
func (n *Node) siftUp(i int, it *Item) {
	q := n.queue
	for i > 0 {
		p := (i - 1) >> 2
		if !n.less(it, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = it
	it.index = i
}

// siftDown sinks the item at index i to its place.
func (n *Node) siftDown(i int) {
	q := n.queue
	nn := len(q)
	it := q[i]
	for {
		c := i<<2 + 1
		if c >= nn {
			break
		}
		m := c
		end := c + 4
		if end > nn {
			end = nn
		}
		for j := c + 1; j < end; j++ {
			if n.less(q[j], q[m]) {
				m = j
			}
		}
		if !n.less(q[m], it) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = it
	it.index = i
}
