package node

import (
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/task"
)

func mustTask(t *testing.T, name string, exec float64) *task.Task {
	t.Helper()
	tk, err := task.NewSimple(name, 0, simtime.Duration(exec))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

// TestAcquireRecycleRoundTrip checks a recycled item comes back fully
// reset: no state of the previous incarnation (callbacks, heap index,
// residual demand, life-cycle state) may leak into the next one.
func TestAcquireRecycleRoundTrip(t *testing.T) {
	eng := des.New()
	n := New(0, eng)

	t1 := mustTask(t, "first", 3)
	it := n.AcquireItem(t1)
	gen := it.Generation()
	it.OnDone = func(*Item, simtime.Time) {}
	it.OnLocalAbort = func(*Item, simtime.Time) {}
	it.Hooks = nopHooks{}
	it.state = StateDone // pretend it ran
	it.remaining = 1
	n.RecycleItem(it)

	t2 := mustTask(t, "second", 7)
	it2 := n.AcquireItem(t2)
	if it2 != it {
		t.Fatalf("pool did not recycle: got %p, want %p", it2, it)
	}
	if it2.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", it2.Generation(), gen+1)
	}
	if it2.Task != t2 {
		t.Fatalf("Task = %v, want %v", it2.Task, t2)
	}
	if it2.OnDone != nil || it2.OnLocalAbort != nil || it2.Hooks != nil {
		t.Fatal("recycled item leaked callbacks from previous incarnation")
	}
	if it2.State() != StateNew || it2.index != -1 {
		t.Fatalf("state/index = %v/%d, want new/-1", it2.State(), it2.index)
	}
	if it2.remaining != t2.Exec {
		t.Fatalf("remaining = %v, want %v", it2.remaining, t2.Exec)
	}
}

type nopHooks struct{}

func (nopHooks) ItemDone(*Item, simtime.Time)       {}
func (nopHooks) ItemLocalAbort(*Item, simtime.Time) {}

// TestStaleRefRejected checks generation-tagged handles: a ref taken
// before recycling must resolve to nil afterwards — even once the item is
// live again as a different incarnation — and RemoveRef through a stale
// handle must be a no-op.
func TestStaleRefRejected(t *testing.T) {
	eng := des.New()
	n := New(0, eng)

	it := n.AcquireItem(mustTask(t, "a", 1))
	ref := it.Ref()
	if ref.Item() != it {
		t.Fatal("live ref did not resolve")
	}
	it.state = StateDone
	n.RecycleItem(it)
	if got := ref.Item(); got != nil {
		t.Fatalf("stale ref resolved to %p, want nil", got)
	}

	// Reincarnate and make the new incarnation live at the node.
	it2 := n.AcquireItem(mustTask(t, "b", 5))
	if err := n.Submit(it2); err != nil {
		t.Fatal(err)
	}
	if got := ref.Item(); got != nil {
		t.Fatal("stale ref resolved against the item's next incarnation")
	}
	if n.RemoveRef(ref) {
		t.Fatal("RemoveRef through a stale handle removed a live item")
	}
	if it2.State() != StateServing {
		t.Fatalf("state = %v, want serving", it2.State())
	}
	// A fresh ref still works.
	if !n.RemoveRef(it2.Ref()) {
		t.Fatal("RemoveRef with live handle = false")
	}

	var zero ItemRef
	if zero.Item() != nil {
		t.Fatal("zero ItemRef resolved")
	}
}

// TestRecycleLiveOrTwicePanics checks the pool's misuse guards.
func TestRecycleLiveOrTwicePanics(t *testing.T) {
	eng := des.New()
	n := New(0, eng)

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}

	it := n.AcquireItem(mustTask(t, "live", 2))
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	expectPanic("recycle serving item", func() { n.RecycleItem(it) })

	done := n.AcquireItem(mustTask(t, "done", 2))
	done.state = StateDone
	n.RecycleItem(done)
	expectPanic("double recycle", func() { n.RecycleItem(done) })
}

// TestPoolAliasingProperty drives a randomized churn of submit, serve,
// remove and recycle through a live node and checks — for thousands of
// incarnations — that no recycled item ever surfaces with stale state and
// that every ref taken on a previous incarnation has gone stale. Run with
// -race to also prove the pool involves no cross-goroutine aliasing.
func TestPoolAliasingProperty(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithLocalAbort())
	s := rng.NewStream(7)

	var history []ItemRef
	var live []*Item
	served, aborted := 0, 0

	dropLive := func(it *Item) {
		for i, v := range live {
			if v == it {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
	}
	finish := func(it *Item, _ simtime.Time) {
		history = append(history, it.Ref())
		dropLive(it)
		served++
		it.owner.RecycleItem(it)
	}
	abort := func(it *Item, _ simtime.Time) {
		history = append(history, it.Ref())
		dropLive(it)
		aborted++
		it.owner.RecycleItem(it)
	}

	for round := 0; round < 4000; round++ {
		switch s.IntN(4) {
		case 0, 1: // submit a fresh task
			exec := 0.1 + s.Exp(1)
			tk, err := task.NewSimple("", 0, simtime.Duration(exec))
			if err != nil {
				t.Fatal(err)
			}
			tk.RealDeadline = eng.Now().Add(simtime.Duration(s.Exp(3)))
			tk.VirtualDeadline = tk.RealDeadline
			it := n.AcquireItem(tk)
			// Fresh incarnation must be pristine.
			if it.OnDone != nil || it.OnLocalAbort != nil || it.Hooks != nil {
				t.Fatalf("round %d: acquired item leaked callbacks", round)
			}
			if it.State() != StateNew || it.remaining != tk.Exec {
				t.Fatalf("round %d: acquired item state %v remaining %v", round, it.State(), it.remaining)
			}
			it.OnDone = finish
			it.OnLocalAbort = abort
			live = append(live, it)
			if err := n.Submit(it); err != nil {
				t.Fatal(err)
			}
		case 2: // withdraw a random live item (process-manager abortion)
			if len(live) == 0 {
				continue
			}
			it := live[s.IntN(len(live))]
			if n.Remove(it) {
				// Remove of a serving item re-dispatches and may locally
				// abort other items, shifting live — search by identity.
				dropLive(it)
				history = append(history, it.Ref())
				n.RecycleItem(it)
			}
		case 3: // let simulated time pass
			if eng.Pending() > 0 {
				eng.Step()
			}
		}
		// Every historical ref was recorded just before its recycle, so it
		// must be stale: resolving it now would be pool aliasing.
		if round%64 == 0 {
			for _, h := range history {
				if h.Item() != nil {
					t.Fatalf("round %d: stale ref resolved against a recycled item", round)
				}
			}
		}
	}
	eng.Run()
	if served == 0 || aborted == 0 {
		t.Fatalf("property run exercised too little: served=%d aborted=%d", served, aborted)
	}
	for _, h := range history {
		if h.Item() != nil {
			t.Fatal("ref recorded before recycle still resolves after the run")
		}
	}
}
