package node

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/simtime"
)

func TestPreemptionSuspendsAndResumes(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPreemption())
	var finishes = map[string]simtime.Time{}
	record := func(i *Item, at simtime.Time) { finishes[i.Task.Name] = at }

	long := mkItem(t, "long", 100, 10)
	long.OnDone = record
	if err := n.Submit(long); err != nil {
		t.Fatal(err)
	}
	// At t=4, an urgent item arrives and must preempt.
	if _, err := eng.At(4, func() {
		urgent := mkItem(t, "urgent", 5, 2)
		urgent.OnDone = record
		if err := n.Submit(urgent); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// urgent runs 4..6; long resumes with 6 residual units, 6..12.
	if finishes["urgent"] != 6 {
		t.Errorf("urgent finished at %v, want 6", finishes["urgent"])
	}
	if finishes["long"] != 12 {
		t.Errorf("long finished at %v, want 12 (work conserved)", finishes["long"])
	}
	// Work conservation: total busy time is 12.
	if bt := n.BusyTime(); math.Abs(float64(bt)-12) > 1e-9 {
		t.Errorf("busy time = %v, want 12", bt)
	}
}

func TestNoPreemptionByDefault(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	var finishes = map[string]simtime.Time{}
	record := func(i *Item, at simtime.Time) { finishes[i.Task.Name] = at }
	long := mkItem(t, "long", 100, 10)
	long.OnDone = record
	if err := n.Submit(long); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(4, func() {
		urgent := mkItem(t, "urgent", 5, 2)
		urgent.OnDone = record
		if err := n.Submit(urgent); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if finishes["long"] != 10 || finishes["urgent"] != 12 {
		t.Errorf("finishes = %v, want long 10, urgent 12 (non-preemptive)", finishes)
	}
}

func TestPreemptionLowerPriorityDoesNotPreempt(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPreemption())
	var finishes = map[string]simtime.Time{}
	record := func(i *Item, at simtime.Time) { finishes[i.Task.Name] = at }
	first := mkItem(t, "first", 5, 10)
	first.OnDone = record
	if err := n.Submit(first); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(4, func() {
		later := mkItem(t, "later", 50, 1)
		later.OnDone = record
		if err := n.Submit(later); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if finishes["first"] != 10 {
		t.Errorf("first finished at %v, want 10 (no preemption by later deadline)", finishes["first"])
	}
}

func TestPreemptionChain(t *testing.T) {
	// Successively more urgent arrivals, each preempting the previous.
	eng := des.New()
	n := New(0, eng, WithPreemption())
	var order []string
	record := func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	a := mkItem(t, "a", 100, 10)
	a.OnDone = record
	if err := n.Submit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(2, func() {
		b := mkItem(t, "b", 50, 10)
		b.OnDone = record
		if err := n.Submit(b); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(5, func() {
		c := mkItem(t, "c", 10, 2)
		c.OnDone = record
		if err := n.Submit(c); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []string{"c", "b", "a"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (EDF with preemption)", order, want)
		}
	}
	// Total work: 10 + 10 + 2 = 22.
	if bt := n.BusyTime(); math.Abs(float64(bt)-22) > 1e-9 {
		t.Errorf("busy = %v, want 22", bt)
	}
}

func TestPreemptedItemCanBeRemoved(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPreemption())
	victim := mkItem(t, "victim", 100, 10)
	if err := n.Submit(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(3, func() {
		urgent := mkItem(t, "urgent", 5, 4)
		if err := n.Submit(urgent); err != nil {
			t.Error(err)
		}
		// victim is now queued (preempted); remove it.
		if !n.Remove(victim) {
			t.Error("failed to remove preempted item")
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if victim.State() != StateAborted {
		t.Errorf("victim state = %v, want aborted", victim.State())
	}
	if victim.Task.Finished() {
		t.Error("removed preempted item should not finish")
	}
	// Busy: 3 (victim's partial) + 4 (urgent) = 7.
	if bt := n.BusyTime(); math.Abs(float64(bt)-7) > 1e-9 {
		t.Errorf("busy = %v, want 7", bt)
	}
}

func TestPreemptionBoostBand(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPreemption())
	var order []string
	record := func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	local := mkItem(t, "local", 5, 10)
	local.OnDone = record
	if err := n.Submit(local); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(1, func() {
		global := mkItem(t, "global", 100, 1)
		global.Task.PriorityBoost = true
		global.OnDone = record
		if err := n.Submit(global); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(order) != 2 || order[0] != "global" {
		t.Errorf("order = %v, want the boosted global first", order)
	}
}
