package node

import (
	"errors"
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/simtime"
	"repro/internal/task"
)

// mkItem builds an item with the given virtual deadline and execution time.
func mkItem(t *testing.T, name string, vdl simtime.Time, ex simtime.Duration) *Item {
	t.Helper()
	tk := task.MustSimple(name, 0, ex)
	tk.VirtualDeadline = vdl
	tk.RealDeadline = vdl
	return NewItem(tk)
}

func TestServeSingleItem(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	var doneAt simtime.Time
	it := mkItem(t, "a", 10, 2)
	it.OnDone = func(_ *Item, at simtime.Time) { doneAt = at }
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt != 2 {
		t.Errorf("done at %v, want 2", doneAt)
	}
	if it.State() != StateDone {
		t.Errorf("state = %v, want done", it.State())
	}
	if it.Task.Finish != 2 {
		t.Errorf("finish = %v, want 2", it.Task.Finish)
	}
	if n.Served() != 1 {
		t.Errorf("served = %d, want 1", n.Served())
	}
}

func TestEDFOrder(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	var order []string
	submit := func(name string, vdl simtime.Time) {
		it := mkItem(t, name, vdl, 1)
		it.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	// First item starts service immediately (non-preemptive); the rest
	// queue and are served in deadline order.
	submit("first", 100)
	submit("late", 50)
	submit("early", 5)
	submit("mid", 20)
	eng.Run()
	want := []string{"first", "early", "mid", "late"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEDFTieBreakFIFO(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	var order []string
	for _, name := range []string{"hold", "a", "b", "c"} {
		it := mkItem(t, name, 7, 1)
		it.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	want := []string{"hold", "a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityBoostBeatsEarlierDeadline(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	var order []string
	hold := mkItem(t, "hold", 1, 1)
	hold.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	local := mkItem(t, "local", 2, 1) // very urgent local
	local.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	global := mkItem(t, "global", 50, 1) // far deadline but boosted
	global.Task.PriorityBoost = true
	global.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
	for _, it := range []*Item{hold, local, global} {
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	want := []string{"hold", "global", "local"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (GF band first)", order, want)
		}
	}
}

func TestFIFOPolicy(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithPolicy(FIFO{}))
	var order []string
	for _, tc := range []struct {
		name string
		vdl  simtime.Time
	}{{"hold", 9}, {"a", 100}, {"b", 1}} {
		it := mkItem(t, tc.name, tc.vdl, 1)
		it.OnDone = func(i *Item, _ simtime.Time) { order = append(order, i.Task.Name) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	want := []string{"hold", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	if err := n.Submit(nil); !errors.Is(err, ErrNotSimple) {
		t.Errorf("nil item err = %v", err)
	}
	comp := task.MustSerial("s", task.MustSimple("a", 0, 1), task.MustSimple("b", 0, 1))
	if err := n.Submit(&Item{Task: comp}); !errors.Is(err, ErrNotSimple) {
		t.Errorf("composite err = %v", err)
	}
	it := mkItem(t, "a", 5, 1)
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	if err := n.Submit(it); !errors.Is(err, ErrResubmitted) {
		t.Errorf("double submit err = %v", err)
	}
}

func TestRemoveQueuedItem(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	blocker := mkItem(t, "blocker", 1, 5)
	victim := mkItem(t, "victim", 2, 1)
	served := false
	victim.OnDone = func(*Item, simtime.Time) { served = true }
	if err := n.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	if err := n.Submit(victim); err != nil {
		t.Fatal(err)
	}
	if !n.Remove(victim) {
		t.Fatal("Remove(queued) = false")
	}
	if victim.State() != StateAborted {
		t.Errorf("state = %v, want aborted", victim.State())
	}
	eng.Run()
	if served {
		t.Error("removed item was served")
	}
	if n.AbortedCount() != 1 {
		t.Errorf("aborted = %d, want 1", n.AbortedCount())
	}
}

func TestRemoveServingItemFreesServer(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	long := mkItem(t, "long", 1, 100)
	next := mkItem(t, "next", 2, 1)
	var nextDone simtime.Time
	next.OnDone = func(_ *Item, at simtime.Time) { nextDone = at }
	if err := n.Submit(long); err != nil {
		t.Fatal(err)
	}
	if err := n.Submit(next); err != nil {
		t.Fatal(err)
	}
	// Kill the in-service item at t=10.
	if _, err := eng.At(10, func() {
		if !n.Remove(long) {
			t.Error("Remove(serving) = false")
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if long.State() != StateAborted {
		t.Errorf("long state = %v, want aborted", long.State())
	}
	if long.Task.Finished() {
		t.Error("killed item should not record a finish time")
	}
	if nextDone != 11 {
		t.Errorf("next done at %v, want 11 (kill at 10 + 1 service)", nextDone)
	}
	// Partial service of the killed item counts toward busy time.
	if bt := n.BusyTime(); math.Abs(float64(bt)-11) > 1e-9 {
		t.Errorf("busy time = %v, want 11", bt)
	}
}

func TestRemoveForeignOrFinishedItem(t *testing.T) {
	eng := des.New()
	n1 := New(0, eng)
	n2 := New(1, eng)
	it := mkItem(t, "a", 5, 1)
	if err := n1.Submit(it); err != nil {
		t.Fatal(err)
	}
	if n2.Remove(it) {
		t.Error("foreign node removed an item it does not own")
	}
	eng.Run()
	if n1.Remove(it) {
		t.Error("removed an already-finished item")
	}
	if n1.Remove(nil) {
		t.Error("Remove(nil) = true")
	}
}

func TestLocalAbortDiscardsExpired(t *testing.T) {
	eng := des.New()
	n := New(0, eng, WithLocalAbort())
	blocker := mkItem(t, "blocker", 1, 10)
	expired := mkItem(t, "expired", 5, 1) // will expire during blocker's service
	fresh := mkItem(t, "fresh", 50, 1)
	var aborted []string
	var served []string
	for _, it := range []*Item{blocker, expired, fresh} {
		it.OnLocalAbort = func(i *Item, _ simtime.Time) { aborted = append(aborted, i.Task.Name) }
		it.OnDone = func(i *Item, _ simtime.Time) { served = append(served, i.Task.Name) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(aborted) != 1 || aborted[0] != "expired" {
		t.Errorf("aborted = %v, want [expired]", aborted)
	}
	if len(served) != 2 || served[0] != "blocker" || served[1] != "fresh" {
		t.Errorf("served = %v, want [blocker fresh]", served)
	}
	if expired.State() != StateAborted {
		t.Errorf("expired state = %v", expired.State())
	}
}

func TestNoLocalAbortByDefault(t *testing.T) {
	eng := des.New()
	n := New(0, eng) // no-abortion overload policy (Table 1 baseline)
	blocker := mkItem(t, "blocker", 1, 10)
	late := mkItem(t, "late", 5, 1)
	var served []string
	for _, it := range []*Item{blocker, late} {
		it.OnDone = func(i *Item, _ simtime.Time) { served = append(served, i.Task.Name) }
		if err := n.Submit(it); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(served) != 2 {
		t.Errorf("served = %v; no-abortion nodes must finish tardy work", served)
	}
}

func TestLocalAbortResubmitAllowed(t *testing.T) {
	// After a local abort the owner may resubmit the same item with a
	// fresh deadline; the node must accept it.
	eng := des.New()
	n := New(0, eng, WithLocalAbort())
	blocker := mkItem(t, "blocker", 1, 10)
	victim := mkItem(t, "victim", 5, 1)
	victim.Task.RealDeadline = 100
	resubmitted := false
	victim.OnLocalAbort = func(i *Item, at simtime.Time) {
		if !resubmitted {
			resubmitted = true
			i.Task.VirtualDeadline = 60 // fresh virtual deadline
			if err := n.Submit(i); err != nil {
				t.Errorf("resubmit: %v", err)
			}
		}
	}
	done := false
	victim.OnDone = func(*Item, simtime.Time) { done = true }
	if err := n.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	if err := n.Submit(victim); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !resubmitted || !done {
		t.Errorf("resubmitted=%v done=%v, want both", resubmitted, done)
	}
}

func TestUtilization(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	for i := 0; i < 5; i++ {
		if err := n.Submit(mkItem(t, "t", 100, 2)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	// 10 units of work finish at t=10 -> utilization 1.
	if u := n.Utilization(); math.Abs(u-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", u)
	}
	eng.RunUntil(20)
	if u := n.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization after idle = %v, want 0.5", u)
	}
}

func TestUtilizationAtTimeZero(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	if u := n.Utilization(); u != 0 {
		t.Errorf("utilization at t=0 = %v, want 0", u)
	}
}

func TestBusyTimeIncludesInService(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	if err := n.Submit(mkItem(t, "a", 100, 10)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(4)
	if bt := n.BusyTime(); math.Abs(float64(bt)-4) > 1e-9 {
		t.Errorf("busy time mid-service = %v, want 4", bt)
	}
	if !n.Busy() {
		t.Error("node should be busy")
	}
}

func TestZeroExecItem(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	done := false
	it := mkItem(t, "instant", 5, 0)
	it.OnDone = func(*Item, simtime.Time) { done = true }
	if err := n.Submit(it); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Error("zero-exec item never completed")
	}
}

func TestItemStateString(t *testing.T) {
	states := map[ItemState]string{
		StateNew: "new", StateQueued: "queued", StateServing: "serving",
		StateDone: "done", StateAborted: "aborted", ItemState(42): "ItemState(42)",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (EDF{}).Name() != "EDF" || (FIFO{}).Name() != "FIFO" {
		t.Error("policy names wrong")
	}
}

func TestMeanQueueLength(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	// Three unit jobs arrive at t=0: queue holds 2 during [0,1), 1 during
	// [1,2), 0 during [2,3). Mean over [0,3] = (2+1+0)/3 = 1.
	for i := 0; i < 3; i++ {
		if err := n.Submit(mkItem(t, "j", 10, 1)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if got := n.MeanQueueLength(); math.Abs(got-1) > 1e-9 {
		t.Errorf("mean queue length = %v, want 1", got)
	}
	// Idle time afterwards dilutes the mean.
	eng.RunUntil(6)
	if got := n.MeanQueueLength(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("mean queue length after idle = %v, want 0.5", got)
	}
}

func TestMeanQueueLengthAtTimeZero(t *testing.T) {
	eng := des.New()
	n := New(0, eng)
	if got := n.MeanQueueLength(); got != 0 {
		t.Errorf("mean queue length at t=0 = %v, want 0", got)
	}
}
