package node

import (
	"container/heap"
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/task"
)

// refHeap is the reference implementation of the waiting queue: the old
// container/heap binary heap over the policy's interface Less. The inline
// 4-ary heap must reproduce its pop order exactly — every policy order is
// total, so this holds independent of arity or internal layout.
type refHeap struct {
	items []*Item
	p     Policy
}

func (h *refHeap) Len() int           { return len(h.items) }
func (h *refHeap) Less(i, j int) bool { return h.p.Less(h.items[i], h.items[j]) }
func (h *refHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *refHeap) Push(x any)         { h.items = append(h.items, x.(*Item)) }
func (h *refHeap) Pop() any {
	last := len(h.items) - 1
	it := h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	return it
}

// reverseEDF is a custom (non-built-in) policy, exercising the interface
// slow path of the inline heap.
type reverseEDF struct{}

func (reverseEDF) Less(a, b *Item) bool {
	if a.Task.VirtualDeadline != b.Task.VirtualDeadline {
		return b.Task.VirtualDeadline.Before(a.Task.VirtualDeadline)
	}
	return a.seq < b.seq
}
func (reverseEDF) Name() string { return "reverse-EDF" }

// TestInlineHeapMatchesContainerHeap drives a randomized push/pop/remove
// mix through the node's inline 4-ary heap and a container/heap reference
// in lockstep and checks the pop orders are identical for every policy.
func TestInlineHeapMatchesContainerHeap(t *testing.T) {
	policies := []Policy{EDF{}, FIFO{}, LLF{}, SJF{}, reverseEDF{}}
	for _, p := range policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			s := rng.NewStream(uint64(len(p.Name())) * 977)
			eng := des.New()
			n := New(0, eng, WithPolicy(p))

			// mk builds twin items — one per heap — with identical keys.
			var seq uint64
			mk := func() (*Item, *Item) {
				exec := simtime.Duration(0.25 + s.Exp(1))
				vdl := simtime.Time(s.Uniform(0, 50))
				boost := s.IntN(8) == 0
				twins := make([]*Item, 2)
				for i := range twins {
					tk, err := task.NewSimple(fmt.Sprintf("t%d", seq), 0, exec)
					if err != nil {
						t.Fatal(err)
					}
					tk.VirtualDeadline = vdl
					tk.PriorityBoost = boost
					it := NewItem(tk)
					it.seq = seq
					twins[i] = it
				}
				seq++
				return twins[0], twins[1]
			}

			ref := &refHeap{p: p}
			checkPair := func(op string, a, b *Item) {
				t.Helper()
				if a.seq != b.seq {
					t.Fatalf("%s diverged: inline heap gave seq %d, container/heap gave seq %d",
						op, a.seq, b.seq)
				}
			}
			checkIndexes := func(op string) {
				t.Helper()
				for i, it := range n.queue {
					if it.index != i {
						t.Fatalf("after %s: queue[%d].index = %d", op, i, it.index)
					}
				}
			}

			for round := 0; round < 3000; round++ {
				switch r := s.IntN(10); {
				case r < 6: // push
					a, b := mk()
					n.qPush(a)
					heap.Push(ref, b)
					checkIndexes("push")
				case r < 8: // pop best
					if len(n.queue) == 0 {
						continue
					}
					checkPair("pop", n.qPop(), heap.Pop(ref).(*Item))
					checkIndexes("pop")
				default: // remove a random queued item (abortion)
					if len(n.queue) == 0 {
						continue
					}
					// Pick by position in the reference heap, match the
					// inline-heap twin by seq through its O(1) index.
					j := s.IntN(ref.Len())
					victim := ref.items[j]
					heap.Remove(ref, j)
					var twin *Item
					for _, it := range n.queue {
						if it.seq == victim.seq {
							twin = it
							break
						}
					}
					if twin == nil {
						t.Fatalf("remove: seq %d in reference but not inline heap", victim.seq)
					}
					if got := n.qRemove(twin.index); got != twin {
						t.Fatalf("qRemove returned seq %d, want %d", got.seq, twin.seq)
					}
					checkIndexes("remove")
				}
				if len(n.queue) != ref.Len() {
					t.Fatalf("round %d: sizes diverged: inline %d, reference %d",
						round, len(n.queue), ref.Len())
				}
			}
			// Drain: the full residual pop order must match.
			for len(n.queue) > 0 {
				checkPair("drain", n.qPop(), heap.Pop(ref).(*Item))
			}
		})
	}
}
