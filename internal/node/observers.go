package node

import "repro/internal/simtime"

// multiObserver fans every callback out to several observers in order.
type multiObserver []Observer

var _ Observer = multiObserver(nil)

// CombineObservers returns an Observer that forwards every event to each
// of the given observers in argument order. Nil entries are skipped; a
// single non-nil observer is returned unwrapped, and combining nothing
// yields nil.
func CombineObservers(obs ...Observer) Observer {
	flat := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return flat
	}
}

// OnEnqueue implements Observer.
func (m multiObserver) OnEnqueue(n *Node, it *Item, at simtime.Time) {
	for _, o := range m {
		o.OnEnqueue(n, it, at)
	}
}

// OnStart implements Observer.
func (m multiObserver) OnStart(n *Node, it *Item, at simtime.Time) {
	for _, o := range m {
		o.OnStart(n, it, at)
	}
}

// OnFinish implements Observer.
func (m multiObserver) OnFinish(n *Node, it *Item, at simtime.Time) {
	for _, o := range m {
		o.OnFinish(n, it, at)
	}
}

// OnAbort implements Observer.
func (m multiObserver) OnAbort(n *Node, it *Item, at simtime.Time) {
	for _, o := range m {
		o.OnAbort(n, it, at)
	}
}

// OnPreempt implements Observer.
func (m multiObserver) OnPreempt(n *Node, it *Item, at simtime.Time) {
	for _, o := range m {
		o.OnPreempt(n, it, at)
	}
}
