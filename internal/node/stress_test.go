package node

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/task"
)

// TestConservationUnderRandomOps drives a node with a random mix of
// submissions, removals, preemption and local aborts, then checks the
// conservation laws that must hold for any schedule:
//
//   - submitted = done + aborted + still-live
//   - busy time <= elapsed time x servers
//   - every done item's finish >= its last possible start
func TestConservationUnderRandomOps(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"preemptive", []Option{WithPreemption()}},
		{"localabort", []Option{WithLocalAbort()}},
		{"multiserver", []Option{WithServers(3)}},
		{"fifo", []Option{WithPolicy(FIFO{})}},
		{"llf", []Option{WithPolicy(LLF{})}},
		{"sjf", []Option{WithPolicy(SJF{})}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			stream := rng.NewStream(77)
			eng := des.New()
			n := New(0, eng, cfg.opts...)

			var submitted, done, localAborted, removed int
			var live []*Item

			submit := func() {
				tk := task.MustSimple("", 0, simtime.Duration(stream.Exp(1)))
				tk.VirtualDeadline = eng.Now().Add(simtime.Duration(stream.Uniform(0.5, 6)))
				tk.RealDeadline = tk.VirtualDeadline
				it := NewItem(tk)
				it.OnDone = func(*Item, simtime.Time) { done++ }
				it.OnLocalAbort = func(*Item, simtime.Time) { localAborted++ }
				if err := n.Submit(it); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				submitted++
				live = append(live, it)
			}

			// Random schedule of arrivals and removals.
			for i := 0; i < 600; i++ {
				at := simtime.Time(stream.Uniform(0, 300))
				if _, err := eng.At(at, func() {
					if stream.Float64() < 0.85 || len(live) == 0 {
						submit()
						return
					}
					victim := live[stream.IntN(len(live))]
					if n.Remove(victim) {
						removed++
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			eng.Run()

			finished := done + localAborted + removed
			if finished != submitted {
				t.Errorf("conservation violated: submitted %d != done %d + localAbort %d + removed %d",
					submitted, done, localAborted, removed)
			}
			if got := int(n.Served()); got != done {
				t.Errorf("node served %d, callbacks saw %d", got, done)
			}
			if got := int(n.AbortedCount()); got != localAborted+removed {
				t.Errorf("node aborted %d, callbacks saw %d", got, localAborted+removed)
			}
			if n.Busy() || n.QueueLen() != 0 {
				t.Error("node not drained")
			}
			elapsed := float64(eng.Now()) * float64(n.Servers())
			if bt := float64(n.BusyTime()); bt > elapsed+1e-9 {
				t.Errorf("busy time %v exceeds capacity %v", bt, elapsed)
			}
			if u := n.Utilization(); u < 0 || u > 1+1e-9 {
				t.Errorf("utilization %v outside [0,1]", u)
			}
			if q := n.MeanQueueLength(); q < 0 {
				t.Errorf("mean queue length %v < 0", q)
			}
			_ = math.Abs
		})
	}
}
