package node

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/task"
)

// faultLog records every scheduling event as text; two runs of the same
// seeded schedule must produce byte-identical logs (the node's fault
// paths may not depend on map iteration order or pointer identity).
type faultLog struct {
	b strings.Builder
}

func (l *faultLog) note(tag string, n *Node, it *Item, at simtime.Time) {
	fmt.Fprintf(&l.b, "%s n%d %s t=%v\n", tag, n.ID(), it.Task.Name, at)
}
func (l *faultLog) OnEnqueue(n *Node, it *Item, at simtime.Time) { l.note("enq", n, it, at) }
func (l *faultLog) OnStart(n *Node, it *Item, at simtime.Time)   { l.note("start", n, it, at) }
func (l *faultLog) OnFinish(n *Node, it *Item, at simtime.Time)  { l.note("fin", n, it, at) }
func (l *faultLog) OnAbort(n *Node, it *Item, at simtime.Time)   { l.note("abort", n, it, at) }
func (l *faultLog) OnPreempt(n *Node, it *Item, at simtime.Time) { l.note("pre", n, it, at) }

// faultRun is the outcome of one randomized crash/set_rate/restart
// interleaving, for cross-run comparison and conservation checks.
type faultRun struct {
	log       string
	submitted int
	done      map[*Item]int // per-item completion count
	work      float64       // sum of exec over completed items
	busy      float64
	elapsed   float64
	servers   int
	minRate   float64
	maxRate   float64
	crashes   uint64
}

// driveFaults runs a 3-server node under a seeded random interleaving of
// submissions, crashes, restarts and rate changes. withCrashes=false
// restricts the faults to set_rate, which keeps service-progress loss out
// of the picture and tightens the busy-time band.
func driveFaults(t *testing.T, seed uint64, withCrashes bool) *faultRun {
	t.Helper()
	stream := rng.NewStream(seed)
	eng := des.New()
	lg := &faultLog{}
	n := New(0, eng, WithServers(3), WithObserver(lg))

	r := &faultRun{done: make(map[*Item]int), minRate: 1, maxRate: 1, servers: n.Servers()}
	useRate := func(rate float64) {
		if rate < r.minRate {
			r.minRate = rate
		}
		if rate > r.maxRate {
			r.maxRate = rate
		}
	}

	var live []*Item
	submit := func() {
		exec := simtime.Duration(stream.Exp(1))
		tk := task.MustSimple(fmt.Sprintf("t%d", r.submitted), 0, exec)
		tk.VirtualDeadline = eng.Now().Add(simtime.Duration(stream.Uniform(0.5, 6)))
		tk.RealDeadline = tk.VirtualDeadline
		it := NewItem(tk)
		it.OnDone = func(done *Item, _ simtime.Time) {
			r.done[done]++
			r.work += float64(exec)
		}
		if err := n.Submit(it); err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		r.submitted++
		live = append(live, it)
	}

	for i := 0; i < 800; i++ {
		at := simtime.Time(stream.Uniform(0, 300))
		if _, err := eng.At(at, func() {
			p := stream.Float64()
			switch {
			case p < 0.70:
				submit()
			case p < 0.82 && withCrashes:
				if n.Down() {
					n.Restart()
				} else {
					n.Crash()
				}
			case p < 0.94:
				rate := stream.Uniform(0.5, 2.0)
				useRate(rate)
				n.SetRate(rate)
			default:
				if n.Down() {
					n.Restart()
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// End of schedule: bring the node back up so every queued item drains.
	if _, err := eng.At(301, func() {
		if n.Down() {
			n.Restart()
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	r.log = lg.b.String()
	r.busy = float64(n.BusyTime())
	r.elapsed = float64(eng.Now())
	r.crashes = n.Crashes()
	if n.Busy() || n.QueueLen() != 0 {
		t.Error("node not drained after final restart")
	}
	return r
}

// TestFaultInterleavingProperties is the property test for the crash
// requeue path and the set_rate residual-demand rescheduling on a
// multi-server node:
//
//   - no lost or duplicated items: every submitted item completes exactly
//     once, even when crashes requeue in-service items mid-run;
//   - busy-time conservation: total busy time is at least the completed
//     work served end-to-end at the fastest rate (crash-lost progress can
//     only add busy time), and never exceeds elapsed x servers; without
//     crashes it is also bounded above by the work at the slowest rate;
//   - determinism: the same seed reproduces a byte-identical event log.
func TestFaultInterleavingProperties(t *testing.T) {
	for _, crashes := range []bool{true, false} {
		crashes := crashes
		name := "crash-setrate-restart"
		if !crashes {
			name = "setrate-only"
		}
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				a := driveFaults(t, seed, crashes)
				b := driveFaults(t, seed, crashes)
				if a.log != b.log {
					t.Fatalf("seed %d: event log differs across identical runs", seed)
				}

				if len(a.done) != a.submitted {
					t.Errorf("seed %d: %d items submitted, %d completed — items lost", seed, a.submitted, len(a.done))
				}
				for it, count := range a.done {
					if count != 1 {
						t.Errorf("seed %d: item %s completed %d times", seed, it.Task.Name, count)
					}
				}
				if crashes && a.crashes == 0 {
					t.Errorf("seed %d: schedule never crashed the node", seed)
				}

				const tol = 1e-6
				if lower := a.work / a.maxRate; a.busy < lower-tol {
					t.Errorf("seed %d: busy time %v below work/maxRate %v — work appeared from nowhere", seed, a.busy, lower)
				}
				if capacity := a.elapsed * float64(a.servers); a.busy > capacity+tol {
					t.Errorf("seed %d: busy time %v exceeds capacity %v", seed, a.busy, capacity)
				}
				if !crashes {
					if upper := a.work / a.minRate; a.busy > upper+tol {
						t.Errorf("seed %d: busy time %v above work/minRate %v without any crash loss", seed, a.busy, upper)
					}
				}
			}
		})
	}
}
