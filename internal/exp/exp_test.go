package exp

import (
	"strings"
	"testing"
)

// tinyOptions keeps experiment tests fast; shape assertions only.
func tinyOptions() Options {
	return Options{Duration: 2500, Warmup: 200, Replications: 1, Seed: 3}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(tinyOptions())
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id = %q, want %q", tbl.ID, e.ID)
			}
			if tbl.Rows() == 0 || len(tbl.Series) == 0 {
				t.Fatalf("empty table: %d rows, %d series", tbl.Rows(), len(tbl.Series))
			}
			for i, row := range tbl.Y {
				if len(row) != len(tbl.Series) {
					t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tbl.Series))
				}
				for j, v := range row {
					if v < 0 || v > 1 {
						t.Errorf("cell [%d][%d] = %v outside [0,1]", i, j, v)
					}
				}
			}
			if tbl.X != nil && len(tbl.X) != tbl.Rows() {
				t.Errorf("x length %d != rows %d", len(tbl.X), tbl.Rows())
			}
			if tbl.RowLabels != nil && len(tbl.RowLabels) != tbl.Rows() {
				t.Errorf("labels length %d != rows %d", len(tbl.RowLabels), tbl.Rows())
			}
		})
	}
}

func TestFindAndIDs(t *testing.T) {
	if _, ok := Find("fig5"); !ok {
		t.Error("fig5 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus id found")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Errorf("IDs() returned %d, want %d", len(ids), len(All()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestTableRenderers(t *testing.T) {
	tbl := &Table{
		ID:     "demo",
		Title:  "Demo",
		XLabel: "load",
		Series: []string{"a", "b"},
		X:      []float64{0.1, 0.2},
		Y:      [][]float64{{0.01, 0.02}, {0.03, 0.04}},
		Err:    [][]float64{{0.001, 0}, {0, 0.002}},
		Notes:  []string{"a note"},
	}
	text := tbl.Text()
	for _, want := range []string{"demo", "Demo", "a note", "load", "0.0100±0.0010", "0.0400±0.0020", "0.0200"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "load,a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "0.1,0.010000,0.020000") {
		t.Errorf("CSV row wrong:\n%s", csv)
	}
}

func TestTableCategoricalRender(t *testing.T) {
	tbl := &Table{
		ID: "cat", Title: "Cat", XLabel: "class",
		Series:    []string{"UD"},
		RowLabels: []string{"local", "global-n2"},
		Y:         [][]float64{{0.1}, {0.2}},
	}
	text := tbl.Text()
	if !strings.Contains(text, "local") || !strings.Contains(text, "global-n2") {
		t.Errorf("categorical labels missing:\n%s", text)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, "global-n2,0.200000") {
		t.Errorf("categorical CSV wrong:\n%s", csv)
	}
}

func TestTable1Static(t *testing.T) {
	got := Table1()
	for _, want := range []string{
		"No Abortion", "Earliest Deadline First", "k (# of nodes)", "6",
		"load", "0.5", "frac_local", "0.75", "[1.25, 5]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Table1 missing %q:\n%s", want, got)
		}
	}
}

func TestTable2Static(t *testing.T) {
	got := Table2()
	for _, want := range []string{"UD-UD", "UD-DIV1", "EQF-UD", "EQF-DIV1"} {
		if !strings.Contains(got, want) {
			t.Errorf("Table2 missing %q:\n%s", want, got)
		}
	}
}

func TestOptionsApply(t *testing.T) {
	o := DefaultOptions()
	cfg := baseline(o)
	if cfg.Duration != o.Duration || cfg.Warmup != o.Warmup ||
		cfg.Replications != o.Replications || cfg.Seed != o.Seed {
		t.Error("options not applied to config")
	}
	q := QuickOptions()
	if q.Duration >= o.Duration {
		t.Error("quick options should be faster than default")
	}
}

func TestTableSVG(t *testing.T) {
	tbl := &Table{
		ID: "demo", Title: "Demo", XLabel: "load",
		Series: []string{"a"},
		X:      []float64{0.1, 0.2},
		Y:      [][]float64{{0.1}, {0.2}},
	}
	svg, err := tbl.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "demo") {
		t.Errorf("bad svg:\n%.200s", svg)
	}
	cat := &Table{
		ID: "cat", Title: "Cat", XLabel: "class",
		Series:    []string{"UD"},
		RowLabels: []string{"local", "n2"},
		Y:         [][]float64{{0.1}, {0.2}},
	}
	if _, err := cat.SVG(); err != nil {
		t.Errorf("categorical svg: %v", err)
	}
}
