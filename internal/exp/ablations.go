package exp

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/par"
	"repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// SerialStrategies compares the four serial (SSP) strategies of the
// companion paper [6] — UD, ED, EQS, EQF — on a pure five-stage serial
// pipeline, isolating the serial subtask problem from PSP effects.
func SerialStrategies(o Options) (*Table, error) {
	loads := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	base := baseline(o)
	base.Spec.Factory = workload.SerialParallel{Stages: 5, Fanout: 1}
	base.Spec.GlobalSlackMin = 6.25
	base.Spec.GlobalSlackMax = 25
	t, err := loadSweep(o, loads, base, []variant{
		{"UD", func(c *sim.Config) { c.SSP = sda.SerialUD{} }},
		{"ED", func(c *sim.Config) { c.SSP = sda.ED{} }},
		{"EQS", func(c *sim.Config) { c.SSP = sda.EQS{} }},
		{"EQF", func(c *sim.Config) { c.SSP = sda.EQF{} }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "ssp", "Serial strategies on a 5-stage pipeline (no parallel stages)"
	t.Notes = append(t.Notes,
		"EQF significantly reduces serial global miss rates over UD (companion paper [6])")
	return t, nil
}

// PexError probes EQF's sensitivity to execution-time estimation error:
// exact predictions, predictions off by factors of 2 and 5 (log-uniform),
// and the distribution mean.
func PexError(o Options) (*Table, error) {
	estimators := []workload.Estimator{
		workload.Exact{},
		workload.Noisy{Factor: 2},
		workload.Noisy{Factor: 5},
		workload.Mean{},
	}
	loads := []float64{0.4, 0.5, 0.6, 0.7}
	t := &Table{
		ID:     "pexerr",
		Title:  "EQF-DIV1 vs pex estimation error (Figure 14 task graph)",
		XLabel: "load",
		X:      loads,
		Notes: []string{
			"the paper reports EQF remains effective with estimates off by a factor of 2",
		},
	}
	for _, e := range estimators {
		t.Series = append(t.Series, "MD_global("+e.Name()+")")
	}
	ne := len(estimators)
	results := make([]sim.Result, len(loads)*ne)
	err := par.Map(o.Workers, len(results), func(i int) error {
		li, ei := i/ne, i%ne
		cfg := fig15Base(o)
		cfg.Spec.Load = loads[li]
		cfg.Spec.Estimator = estimators[ei]
		cfg.SSP = sda.EQF{}
		cfg.PSP = sda.MustDiv(1)
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s at load %v: %w", estimators[ei].Name(), loads[li], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li := range loads {
		var row, errs []float64
		for ei := range estimators {
			res := results[li*ne+ei]
			row = append(row, res.MDGlobal.Mean)
			errs = append(errs, res.MDGlobal.HalfWidth)
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// FIFOAblation contrasts deadline-blind FIFO local queues with EDF under
// the best PSP strategy, showing how much the paper's premise of
// deadline-driven local scheduling matters.
func FIFOAblation(o Options) (*Table, error) {
	loads := []float64{0.3, 0.5, 0.7, 0.9}
	t, err := loadSweep(o, loads, baseline(o), []variant{
		{"EDF/DIV-1", func(c *sim.Config) { c.Policy = node.EDF{}; c.PSP = sda.MustDiv(1) }},
		{"FIFO/DIV-1", func(c *sim.Config) { c.Policy = node.FIFO{}; c.PSP = sda.MustDiv(1) }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fifo", "EDF vs FIFO local queues under DIV-1"
	t.Notes = append(t.Notes,
		"FIFO ignores virtual deadlines entirely, so deadline assignment cannot help it")
	return t, nil
}

// GFDelta verifies that the two GF encodings — the priority band and the
// literal dl - Delta subtraction on a plain EDF queue — behave
// identically, as the paper's construction implies.
func GFDelta(o Options) (*Table, error) {
	loads := []float64{0.3, 0.5, 0.7}
	t, err := loadSweep(o, loads, baseline(o), []variant{
		{"GF-band", func(c *sim.Config) { c.PSP = sda.GF{} }},
		{"GF-delta", func(c *sim.Config) { c.PSP = sda.GF{UseDelta: true} }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "gfdelta", "GF priority band vs literal delta encoding"
	t.Notes = append(t.Notes, "the two encodings should coincide (within noise)")
	return t, nil
}

// flatDiv is a DIV variant that ignores the fan-out n: it divides the
// allowance by a fixed factor only. It exists to demonstrate why the
// paper's DIV-x scales with the number of subtasks.
type flatDiv struct {
	factor float64
}

var _ sda.PSP = flatDiv{}

// AssignParallel implements sda.PSP.
func (f flatDiv) AssignParallel(ar simtime.Time, deadline simtime.Time, _ int) sda.Assignment {
	allowance := deadline.Sub(ar)
	if allowance < 0 {
		return sda.Assignment{Virtual: deadline}
	}
	v := ar.Add(allowance.Scale(1 / f.factor))
	return sda.Assignment{Virtual: v.Min(deadline)}
}

// Name implements sda.PSP.
func (f flatDiv) Name() string { return fmt.Sprintf("FLAT-%g", f.factor) }

// DivNoFanout compares DIV-1 against flat divisors on the non-homogeneous
// workload: a fixed divisor cannot adapt to tasks of different sizes, so
// per-class miss rates stay skewed.
func DivNoFanout(o Options) (*Table, error) {
	classes := []int{2, 3, 4, 5, 6}
	strategies := []sda.PSP{sda.MustDiv(1), flatDiv{factor: 2}, flatDiv{factor: 6}}
	t := &Table{
		ID:        "divnox",
		Title:     "DIV-1 (scales with n) vs flat divisors on the n~U[2..6] workload",
		XLabel:    "class",
		RowLabels: []string{"local"},
		Notes: []string{
			"DIV-x's n-scaling adjusts the priority boost to the task size automatically",
		},
	}
	for _, n := range classes {
		t.RowLabels = append(t.RowLabels, fmt.Sprintf("global-n%d", n))
	}
	for _, s := range strategies {
		t.Series = append(t.Series, s.Name())
	}
	cols := make([][]float64, len(strategies))
	colErrs := make([][]float64, len(strategies))
	err := par.Map(o.Workers, len(strategies), func(i int) error {
		cfg := baseline(o)
		cfg.Spec.Factory = workload.UniformParallel{Min: 2, Max: 6}
		cfg.PSP = strategies[i]
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", strategies[i].Name(), err)
		}
		cols[i] = append(cols[i], res.MDLocal.Mean)
		colErrs[i] = append(colErrs[i], res.MDLocal.HalfWidth)
		for _, n := range classes {
			iv := res.MDGlobalBy[n]
			cols[i] = append(cols[i], iv.Mean)
			colErrs[i] = append(colErrs[i], iv.HalfWidth)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := range t.RowLabels {
		row := make([]float64, len(strategies))
		errs := make([]float64, len(strategies))
		for cIdx := range strategies {
			row[cIdx] = cols[cIdx][r]
			errs[cIdx] = colErrs[cIdx][r]
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// Preemption compares the paper's non-preemptive EDF service with a
// preemptive-resume EDF server under DIV-1. Preemption lets urgent
// arrivals interrupt long jobs, which mostly helps the locals competing
// with boosted subtasks.
func Preemption(o Options) (*Table, error) {
	loads := []float64{0.3, 0.5, 0.7, 0.9}
	t, err := loadSweep(o, loads, baseline(o), []variant{
		{"nonpreempt", func(c *sim.Config) { c.PSP = sda.MustDiv(1); c.Preemptive = false }},
		{"preempt", func(c *sim.Config) { c.PSP = sda.MustDiv(1); c.Preemptive = true }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "preempt", "Non-preemptive vs preemptive-resume EDF under DIV-1"
	t.Notes = append(t.Notes,
		"the paper's model is non-preemptive; preemption is an ablation on the service discipline")
	return t, nil
}

// Policies compares local scheduling disciplines under the best simple
// strategy pair (UD locals + DIV-1 subtasks): deadline-driven EDF and LLF
// against deadline-blind SJF and FIFO.
func Policies(o Options) (*Table, error) {
	loads := []float64{0.3, 0.5, 0.7}
	t, err := loadSweep(o, loads, baseline(o), []variant{
		{"EDF", func(c *sim.Config) { c.Policy = node.EDF{}; c.PSP = sda.MustDiv(1) }},
		{"LLF", func(c *sim.Config) { c.Policy = node.LLF{}; c.PSP = sda.MustDiv(1) }},
		{"SJF", func(c *sim.Config) { c.Policy = node.SJF{}; c.PSP = sda.MustDiv(1) }},
		{"FIFO", func(c *sim.Config) { c.Policy = node.FIFO{}; c.PSP = sda.MustDiv(1) }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "policies", "Local scheduling policies under DIV-1"
	t.Notes = append(t.Notes,
		"deadline-driven policies (EDF, LLF) act on the assigned virtual deadlines; SJF/FIFO cannot")
	return t, nil
}

// ServiceDist probes how service-time variability affects the strategies:
// DIV-1 on the baseline with deterministic, Erlang-4, exponential and
// hyperexponential (SCV 4) execution times for both locals and subtasks.
func ServiceDist(o Options) (*Table, error) {
	dists := []workload.Dist{
		workload.Deterministic{},
		workload.ErlangK{K: 4},
		workload.Exponential{},
		workload.HyperExp{CV2: 4},
	}
	loads := []float64{0.3, 0.5, 0.7}
	t := &Table{
		ID:     "svcdist",
		Title:  "Service-time variability under DIV-1 (SCV 0, 1/4, 1, 4)",
		XLabel: "load",
		X:      loads,
		Notes: []string{
			"higher service variability raises every miss rate; the paper's model is exponential (SCV 1)",
		},
	}
	for _, d := range dists {
		t.Series = append(t.Series,
			"MD_local("+d.Name()+")", "MD_global("+d.Name()+")")
	}
	nd := len(dists)
	results := make([]sim.Result, len(loads)*nd)
	err := par.Map(o.Workers, len(results), func(i int) error {
		li, di := i/nd, i%nd
		cfg := baseline(o)
		cfg.Spec.Load = loads[li]
		cfg.Spec.LocalService = dists[di]
		cfg.Spec.SubtaskService = dists[di]
		cfg.PSP = sda.MustDiv(1)
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s at load %v: %w", dists[di].Name(), loads[li], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li := range loads {
		var row, errs []float64
		for di := range dists {
			res := results[li*nd+di]
			row = append(row, res.MDLocal.Mean, res.MDGlobal.Mean)
			errs = append(errs, res.MDLocal.HalfWidth, res.MDGlobal.HalfWidth)
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// Network reproduces the paper's "network as a resource" treatment
// (Section 3.2): the Figure 14 pipeline with explicit network-hop
// subtasks between stages, queueing at dedicated network nodes. Two
// network nodes carry all inter-stage traffic, so they congest first.
func Network(o Options) (*Table, error) {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	base := baseline(o)
	base.Spec.K = 8 // 6 compute + 2 network
	base.Spec.Factory = workload.NetworkPipeline{
		Stages: 5, Fanout: 4, NetNodes: 2, HopMean: 0.25,
	}
	base.Spec.GlobalSlackMin = 6.25
	base.Spec.GlobalSlackMax = 25
	t, err := loadSweep(o, loads, base, []variant{
		{"UD-UD", func(c *sim.Config) { c.SSP = sda.SerialUD{}; c.PSP = sda.UD{} }},
		{"EQF-DIV1", func(c *sim.Config) { c.SSP = sda.EQF{}; c.PSP = sda.MustDiv(1) }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "network", "Pipeline with explicit network-hop subtasks (2 network nodes)"
	t.Notes = append(t.Notes,
		"network hops are scheduled resources like any node; EQF-DIV1 budgets them the same way")
	return t, nil
}

// Scale varies the system size k at fixed load and fan-out. With n = 4
// parallel subtasks spread over more nodes, the chance that two subtasks
// of one task collide on a busy node falls, but each node's local mix is
// unchanged — the PSP effect persists at every scale.
func Scale(o Options) (*Table, error) {
	ks := []float64{4, 6, 12, 24}
	t := &Table{
		ID:     "scale",
		Title:  "System size k at fixed load 0.5 (n = 4 parallel subtasks)",
		XLabel: "k",
		X:      ks,
		Series: []string{
			"MD_local(UD)", "MD_global(UD)",
			"MD_local(DIV-1)", "MD_global(DIV-1)",
		},
		Notes: []string{
			"miss rates are nearly scale-free: the paper's k=6 results generalise to larger systems",
		},
	}
	variants := []variant{
		{"UD", func(c *sim.Config) { c.PSP = sda.UD{} }},
		{"DIV-1", func(c *sim.Config) { c.PSP = sda.MustDiv(1) }},
	}
	results := make([]sim.Result, len(ks)*2)
	err := par.Map(o.Workers, len(results), func(i int) error {
		ki, vi := i/2, i%2
		cfg := baseline(o)
		cfg.Spec.K = int(ks[ki])
		variants[vi].mutate(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s at k=%v: %w", variants[vi].name, ks[ki], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki := range ks {
		var row, errs []float64
		for vi := range variants {
			res := results[ki*2+vi]
			row = append(row, res.MDLocal.Mean, res.MDGlobal.Mean)
			errs = append(errs, res.MDLocal.HalfWidth, res.MDGlobal.HalfWidth)
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}
