package exp

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1 renders the paper's Table 1 (the baseline parameter setting) from
// the library's actual defaults, so drift between code and documentation
// is impossible.
func Table1() string {
	cfg := sim.Default()
	s := cfg.Spec
	f, ok := s.Factory.(workload.FixedParallel)
	n := 0
	if ok {
		n = f.N
	}
	var b strings.Builder
	b.WriteString("# Table 1 — Baseline setting\n")
	rows := [][2]string{
		{"Overload Management Policy", "No Abortion"},
		{"Local Scheduling Algorithm", "Earliest Deadline First"},
		{"mu_subtask", fmt.Sprintf("%g", 1/s.MeanSubtaskExec)},
		{"mu_local", fmt.Sprintf("%g", 1/s.MeanLocalExec)},
		{"k (# of nodes)", fmt.Sprintf("%d", s.K)},
		{"n (# of subtasks of a global task)", fmt.Sprintf("%d", n)},
		{"load", fmt.Sprintf("%g", s.Load)},
		{"frac_local", fmt.Sprintf("%g", s.FracLocal)},
		{"[S_min, S_max]", fmt.Sprintf("[%g, %g]", s.SlackMin, s.SlackMax)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %s\n", r[0], r[1])
	}
	return b.String()
}

// Table2 renders the paper's Table 2: the SSP x PSP strategy combinations
// evaluated in Figure 15.
func Table2() string {
	var b strings.Builder
	b.WriteString("# Table 2 — Combination of SSP/PSP strategies\n")
	fmt.Fprintf(&b, "%-10s %-5s %s\n", "SDA", "SSP", "PSP")
	for _, r := range [][3]string{
		{"UD-UD", "UD", "UD"},
		{"UD-DIV1", "UD", "DIV1"},
		{"EQF-UD", "EQF", "UD"},
		{"EQF-DIV1", "EQF", "DIV1"},
	} {
		fmt.Fprintf(&b, "%-10s %-5s %s\n", r[0], r[1], r[2])
	}
	return b.String()
}
