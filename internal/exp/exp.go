// Package exp defines one runnable experiment per table and figure of the
// paper's evaluation (Sections 6-8), plus the ablations DESIGN.md calls
// out. Each experiment returns a Table whose series mirror the curves the
// paper plots, so the harness regenerates the published graphs' data.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/svgplot"
)

// Options scales the fidelity of an experiment run.
type Options struct {
	Duration     simtime.Duration // simulated time per replication
	Warmup       simtime.Duration
	Replications int
	Seed         uint64

	// Workers bounds the parallelism of the run at both levels: the
	// experiment's cells fan out over at most Workers goroutines (0 =
	// GOMAXPROCS, the historical default) and each cell passes the same
	// bound to sim.Config.Workers for its replications. Both levels draw
	// helpers from one bounded process-wide pool (internal/par), so the
	// two never multiply. Results are identical for every setting.
	Workers int
}

// DefaultOptions approximates the paper's fidelity: two long runs per data
// point (the paper used two runs of one million time units; 200k per
// replication gives confidence intervals of a similar order at a fraction
// of the wall-clock cost — scale up with -duration for tighter intervals).
func DefaultOptions() Options {
	return Options{Duration: 200000, Warmup: 2000, Replications: 2, Seed: 1994}
}

// QuickOptions is a fast low-fidelity setting for tests and smoke runs.
func QuickOptions() Options {
	return Options{Duration: 8000, Warmup: 500, Replications: 1, Seed: 1994}
}

// apply stamps the options onto a simulation config.
func (o Options) apply(cfg *sim.Config) {
	cfg.Duration = o.Duration
	cfg.Warmup = o.Warmup
	cfg.Replications = o.Replications
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
}

// Table is the output of one experiment: named series sampled at common x
// values (or at categorical rows).
type Table struct {
	ID     string
	Title  string
	XLabel string
	Series []string

	X         []float64 // numeric x values (nil when RowLabels is set)
	RowLabels []string  // categorical rows (nil when X is set)
	Y         [][]float64
	Err       [][]float64 // CI half-widths, same shape as Y (may be nil)

	Notes []string
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return len(t.Y) }

// rowLabel renders the x value or label of row i.
func (t *Table) rowLabel(i int) string {
	if t.RowLabels != nil {
		return t.RowLabels[i]
	}
	return trim(t.X[i])
}

func trim(f float64) string { return fmt.Sprintf("%g", f) }

// Text renders the table for terminals.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %20s", s)
	}
	b.WriteByte('\n')
	for i := 0; i < t.Rows(); i++ {
		fmt.Fprintf(&b, "%-12s", t.rowLabel(i))
		for j := range t.Series {
			cell := fmt.Sprintf("%.4f", t.Y[i][j])
			if t.Err != nil && t.Err[i][j] > 0 {
				cell = fmt.Sprintf("%.4f±%.4f", t.Y[i][j], t.Err[i][j])
			}
			fmt.Fprintf(&b, " %20s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(s)
	}
	b.WriteByte('\n')
	for i := 0; i < t.Rows(); i++ {
		b.WriteString(t.rowLabel(i))
		for j := range t.Series {
			fmt.Fprintf(&b, ",%.6f", t.Y[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner executes one experiment at the given fidelity.
type Runner func(Options) (*Table, error)

// Experiment couples an identifier with its runner and description.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig5", "UD baseline: MD vs load (Figure 5)", Fig5},
		{"fig6", "UD vs DIV-1 vs DIV-2 (Figure 6)", Fig6},
		{"fig7", "UD vs DIV-1 vs GF (Figure 7)", Fig7},
		{"fig9", "Choosing x for DIV-x (Figure 9)", Fig9},
		{"fig10a", "DIV-1 vs frac_local (Figure 10a)", Fig10a},
		{"fig10b", "GF vs frac_local (Figure 10b)", Fig10b},
		{"fig11", "Process-manager abortion (Figure 11)", Fig11},
		{"localabort", "Local-scheduler abortion ablation (Section 7.3)", LocalAbort},
		{"fig12", "Non-homogeneous classes (Figure 12)", Fig12},
		{"fig15", "SSP+PSP combinations (Figure 15)", Fig15},
		{"ssp", "Serial strategies UD/ED/EQS/EQF ablation (after [6])", SerialStrategies},
		{"pexerr", "EQF robustness to pex estimation error (ablation)", PexError},
		{"fifo", "FIFO vs EDF local queues (ablation)", FIFOAblation},
		{"gfdelta", "GF band vs literal delta encoding (ablation)", GFDelta},
		{"divnox", "DIV-x with and without fan-out scaling (ablation)", DivNoFanout},
		{"preempt", "Non-preemptive vs preemptive EDF (ablation)", Preemption},
		{"policies", "Local scheduling policies EDF/LLF/SJF/FIFO (ablation)", Policies},
		{"svcdist", "Service-time variability SCV 0..4 (ablation)", ServiceDist},
		{"network", "Explicit network-hop resources (Section 3.2 treatment)", Network},
		{"scale", "System size sweep k = 4..24 (ablation)", Scale},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment identifiers.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// SVG renders the table as a chart: a line chart for numeric sweeps, a
// grouped bar chart for categorical tables.
func (t *Table) SVG() (string, error) {
	return svgplot.Render(svgplot.Chart{
		Title:  t.ID + " — " + t.Title,
		XLabel: t.XLabel,
		YLabel: "fraction of missed deadlines",
		Series: t.Series,
		X:      t.X,
		Labels: t.RowLabels,
		Y:      t.Y,
	})
}
