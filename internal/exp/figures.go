package exp

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/workload"
)

// loadSweepDefault is the load axis used by the paper's load plots. The
// paper stresses intermediate-to-high loads; a stable system needs
// load < 1.
var loadSweepDefault = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// variant is one curve pair (MD_local, MD_global) in a load sweep.
type variant struct {
	name   string
	mutate func(*sim.Config)
}

// baseline returns the Table 1 configuration at the given fidelity.
func baseline(o Options) sim.Config {
	cfg := sim.Default()
	o.apply(&cfg)
	return cfg
}

// BaselineConfig exposes the Table 1 baseline cell at the given fidelity
// for callers outside the figure pipeline — cmd/sdaexp's -obs mode runs
// it with telemetry attached to export the observed baseline.
func BaselineConfig(o Options) sim.Config {
	return baseline(o)
}

// loadSweep runs each variant across the load axis, producing the series
// MD_local(v) and MD_global(v) for every variant v, plus MD_subtask for
// the first variant when withSubtask is set (Figure 5 plots it). The
// cells are independent simulations and run in parallel; results are
// deterministic because every cell's seed is fixed by the options.
func loadSweep(o Options, loads []float64, base sim.Config, variants []variant, withSubtask bool) (*Table, error) {
	t := &Table{XLabel: "load", X: loads}
	for i, v := range variants {
		t.Series = append(t.Series, "MD_local("+v.name+")", "MD_global("+v.name+")")
		if withSubtask && i == 0 {
			t.Series = append(t.Series, "MD_subtask("+v.name+")")
		}
	}
	nv := len(variants)
	results := make([]sim.Result, len(loads)*nv)
	err := par.Map(o.Workers, len(results), func(i int) error {
		li, vi := i/nv, i%nv
		cfg := base
		cfg.Spec.Load = loads[li]
		variants[vi].mutate(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s at load %v: %w", variants[vi].name, loads[li], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li := range loads {
		var row, errs []float64
		for vi := range variants {
			res := results[li*nv+vi]
			row = append(row, res.MDLocal.Mean, res.MDGlobal.Mean)
			errs = append(errs, res.MDLocal.HalfWidth, res.MDGlobal.HalfWidth)
			if withSubtask && vi == 0 {
				row = append(row, res.MDSubtask.Mean)
				errs = append(errs, res.MDSubtask.HalfWidth)
			}
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: the UD baseline's miss rates for local tasks,
// simple subtasks and global tasks as a function of load.
func Fig5(o Options) (*Table, error) {
	t, err := loadSweep(o, loadSweepDefault, baseline(o),
		[]variant{{"UD", func(c *sim.Config) { c.PSP = sda.UD{} }}}, true)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig5", "Performance of UD in baseline experiment"
	t.Notes = append(t.Notes,
		"paper anchors at load 0.5: MD_local ~ 8.9%, MD_subtask ~ 7.1%, MD_global ~ 25%")
	return t, nil
}

// Fig6 reproduces Figure 6: UD vs DIV-1 vs DIV-2 across load.
func Fig6(o Options) (*Table, error) {
	t, err := loadSweep(o, loadSweepDefault, baseline(o), []variant{
		{"UD", func(c *sim.Config) { c.PSP = sda.UD{} }},
		{"DIV-1", func(c *sim.Config) { c.PSP = sda.MustDiv(1) }},
		{"DIV-2", func(c *sim.Config) { c.PSP = sda.MustDiv(2) }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig6", "Performance of UD and DIV-x in baseline experiment"
	t.Notes = append(t.Notes,
		"paper anchors at load 0.5: DIV-1 MD_local ~ 11.7%, MD_global ~ 13%; DIV-2 ~ DIV-1")
	return t, nil
}

// Fig7 reproduces Figure 7: UD vs DIV-1 vs GF across load.
func Fig7(o Options) (*Table, error) {
	t, err := loadSweep(o, loadSweepDefault, baseline(o), []variant{
		{"UD", func(c *sim.Config) { c.PSP = sda.UD{} }},
		{"DIV-1", func(c *sim.Config) { c.PSP = sda.MustDiv(1) }},
		{"GF", func(c *sim.Config) { c.PSP = sda.GF{} }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig7", "Performance of UD, DIV-1 and GF in baseline experiment"
	t.Notes = append(t.Notes,
		"GF matches DIV-1 on locals while missing significantly fewer globals, especially under high load")
	return t, nil
}

// Fig9 reproduces Figure 9: MD under DIV-x as a function of x, for global
// tasks with n = 2, 4 and 6 parallel subtasks, at the baseline load.
func Fig9(o Options) (*Table, error) {
	xs := []float64{0.25, 0.5, 1, 2, 3, 4, 6, 8}
	fanouts := []int{2, 4, 6}
	t := &Table{
		ID:     "fig9",
		Title:  "MD under DIV-x as a function of x for n = 2, 4, 6",
		XLabel: "x",
		X:      xs,
		Notes: []string{
			"curves flatten as x grows; they stabilise at smaller x for larger n; x = 1 is adequate",
		},
	}
	for _, n := range fanouts {
		t.Series = append(t.Series,
			fmt.Sprintf("MD_local(n=%d)", n), fmt.Sprintf("MD_global(n=%d)", n))
	}
	nf := len(fanouts)
	results := make([]sim.Result, len(xs)*nf)
	err := par.Map(o.Workers, len(results), func(i int) error {
		xi, fi := i/nf, i%nf
		cfg := baseline(o)
		cfg.Spec.Factory = workload.FixedParallel{N: fanouts[fi]}
		cfg.PSP = sda.MustDiv(xs[xi])
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("DIV-%g n=%d: %w", xs[xi], fanouts[fi], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for xi := range xs {
		var row, errs []float64
		for fi := range fanouts {
			res := results[xi*nf+fi]
			row = append(row, res.MDLocal.Mean, res.MDGlobal.Mean)
			errs = append(errs, res.MDLocal.HalfWidth, res.MDGlobal.HalfWidth)
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// fracLocalSweep is shared by Figures 10(a) and 10(b).
func fracLocalSweep(o Options, id, title string, challenger variant) (*Table, error) {
	fracs := []float64{0, 0.2, 0.4, 0.6, 0.75, 0.9}
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "frac_local",
		X:      fracs,
		Series: []string{
			"MD_local(UD)", "MD_global(UD)",
			"MD_local(" + challenger.name + ")", "MD_global(" + challenger.name + ")",
		},
		Notes: []string{
			"UD's rates rise mildly with frac_local; the challenger's fall — it is most effective with a large local population",
		},
	}
	variants := []variant{
		{"UD", func(c *sim.Config) { c.PSP = sda.UD{} }},
		challenger,
	}
	results := make([]sim.Result, len(fracs)*2)
	err := par.Map(o.Workers, len(results), func(i int) error {
		fi, vi := i/2, i%2
		cfg := baseline(o)
		cfg.Spec.FracLocal = fracs[fi]
		variants[vi].mutate(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s at frac %v: %w", variants[vi].name, fracs[fi], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi := range fracs {
		var row, errs []float64
		for vi := range variants {
			res := results[fi*2+vi]
			row = append(row, res.MDLocal.Mean, res.MDGlobal.Mean)
			errs = append(errs, res.MDLocal.HalfWidth, res.MDGlobal.HalfWidth)
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// Fig10a reproduces Figure 10(a): DIV-1 as a function of frac_local.
func Fig10a(o Options) (*Table, error) {
	return fracLocalSweep(o, "fig10a", "DIV-1 as a function of frac_local",
		variant{"DIV-1", func(c *sim.Config) { c.PSP = sda.MustDiv(1) }})
}

// Fig10b reproduces Figure 10(b): GF as a function of frac_local. At
// frac_local = 0 GF degenerates to UD (all deadlines shifted equally).
func Fig10b(o Options) (*Table, error) {
	t, err := fracLocalSweep(o, "fig10b", "GF as a function of frac_local",
		variant{"GF", func(c *sim.Config) { c.PSP = sda.GF{} }})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "at frac_local = 0, GF performs exactly like UD")
	return t, nil
}

// Fig11 reproduces Figure 11: UD and DIV-1 with process-manager abortion.
func Fig11(o Options) (*Table, error) {
	base := baseline(o)
	base.Abort = sim.AbortProcessManager
	t, err := loadSweep(o, loadSweepDefault, base, []variant{
		{"UD", func(c *sim.Config) { c.PSP = sda.UD{} }},
		{"DIV-1", func(c *sim.Config) { c.PSP = sda.MustDiv(1) }},
		{"GF", func(c *sim.Config) { c.PSP = sda.GF{} }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig11", "UD and DIV-1 with process-manager abortion"
	t.Notes = append(t.Notes,
		"paper anchors at load 0.5: MD_global(UD) ~ 15%, MD_global(DIV-1) ~ 7.8%",
		"the paper omits GF's curves for legibility (similar to DIV-1); they are included here")
	return t, nil
}

// LocalAbort reproduces the Section 7.3 discussion (results "not shown" in
// the paper): DIV-x with local-scheduler aborts across x, versus the same
// strategy with process-manager aborts, in the paper's "moderate to tight"
// environment (elevated load, small slack). Both policies reclaim capacity
// from tardy work, but local aborts kill subtasks that still had time and
// burn their slack in failed trials.
func LocalAbort(o Options) (*Table, error) {
	xs := []float64{0.5, 1, 2, 4, 8}
	t := &Table{
		ID:     "localabort",
		Title:  "DIV-x: local-scheduler vs process-manager abortion (load 0.6, slack [0.5, 2])",
		XLabel: "x",
		X:      xs,
		Series: []string{
			"MD_local(pm-abort)", "MD_global(pm-abort)",
			"MD_local(local-abort)", "MD_global(local-abort)",
		},
		Notes: []string{
			"local aborts waste slack on spurious kills: MD_global stays well above the process-manager-abort level",
		},
	}
	modes := []sim.AbortMode{sim.AbortProcessManager, sim.AbortLocalScheduler}
	results := make([]sim.Result, len(xs)*len(modes))
	err := par.Map(o.Workers, len(results), func(i int) error {
		xi, mi := i/len(modes), i%len(modes)
		cfg := baseline(o)
		cfg.Spec.Load = 0.6
		cfg.Spec.SlackMin, cfg.Spec.SlackMax = 0.5, 2.0
		cfg.PSP = sda.MustDiv(xs[xi])
		cfg.Abort = modes[mi]
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("DIV-%g %v: %w", xs[xi], modes[mi], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for xi := range xs {
		var row, errs []float64
		for mi := range modes {
			res := results[xi*len(modes)+mi]
			row = append(row, res.MDLocal.Mean, res.MDGlobal.Mean)
			errs = append(errs, res.MDLocal.HalfWidth, res.MDGlobal.HalfWidth)
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// Fig12 reproduces Figure 12: per-class miss rates (locals and globals
// with n = 2..6 subtasks) under UD, DIV-1 and GF, for the non-homogeneous
// workload of Section 7.4.
func Fig12(o Options) (*Table, error) {
	classes := []int{2, 3, 4, 5, 6}
	t := &Table{
		ID:        "fig12",
		Title:     "MD of task classes under the PSP strategies (n uniform on [2..6])",
		XLabel:    "class",
		RowLabels: []string{"local"},
		Series:    []string{"UD", "DIV-1", "GF"},
		Notes: []string{
			"UD penalises large globals (n=6 ~ 4x local); DIV-1 evens the classes; GF pushes globals lowest",
		},
	}
	for _, n := range classes {
		t.RowLabels = append(t.RowLabels, fmt.Sprintf("global-n%d", n))
	}
	strategies := []variant{
		{"UD", func(c *sim.Config) { c.PSP = sda.UD{} }},
		{"DIV-1", func(c *sim.Config) { c.PSP = sda.MustDiv(1) }},
		{"GF", func(c *sim.Config) { c.PSP = sda.GF{} }},
	}
	// One run per strategy (in parallel); rows are classes.
	cols := make([][]float64, len(strategies))
	colErrs := make([][]float64, len(strategies))
	err := par.Map(o.Workers, len(strategies), func(i int) error {
		v := strategies[i]
		cfg := baseline(o)
		cfg.Spec.Factory = workload.UniformParallel{Min: 2, Max: 6}
		v.mutate(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		cols[i] = append(cols[i], res.MDLocal.Mean)
		colErrs[i] = append(colErrs[i], res.MDLocal.HalfWidth)
		for _, n := range classes {
			iv := res.MDGlobalBy[n]
			cols[i] = append(cols[i], iv.Mean)
			colErrs[i] = append(colErrs[i], iv.HalfWidth)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := range t.RowLabels {
		row := make([]float64, len(strategies))
		errs := make([]float64, len(strategies))
		for cIdx := range strategies {
			row[cIdx] = cols[cIdx][r]
			errs[cIdx] = colErrs[cIdx][r]
		}
		t.Y = append(t.Y, row)
		t.Err = append(t.Err, errs)
	}
	return t, nil
}

// fig15Base returns the Section 8 configuration: the Figure 14 task graph
// (five serial stages; stages 2 and 4 are 4-way parallel) with global
// slack scaled by the number of stages.
func fig15Base(o Options) sim.Config {
	cfg := baseline(o)
	cfg.Spec.Factory = workload.SerialParallel{Stages: 5, Fanout: 4}
	cfg.Spec.GlobalSlackMin = 6.25
	cfg.Spec.GlobalSlackMax = 25
	return cfg
}

// Fig15 reproduces Figure 15: the four SSP x PSP combinations of Table 2
// on the serial-parallel workload.
func Fig15(o Options) (*Table, error) {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	t, err := loadSweep(o, loads, fig15Base(o), []variant{
		{"UD-UD", func(c *sim.Config) { c.SSP = sda.SerialUD{}; c.PSP = sda.UD{} }},
		{"UD-DIV1", func(c *sim.Config) { c.SSP = sda.SerialUD{}; c.PSP = sda.MustDiv(1) }},
		{"EQF-UD", func(c *sim.Config) { c.SSP = sda.EQF{}; c.PSP = sda.UD{} }},
		{"EQF-DIV1", func(c *sim.Config) { c.SSP = sda.EQF{}; c.PSP = sda.MustDiv(1) }},
	}, false)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "fig15", "Performance of the SDA strategy combinations (Table 2) on the Figure 14 task graph"
	t.Notes = append(t.Notes,
		"at low load globals miss less (larger slack); UD-UD collapses as load grows;",
		"EQF and DIV-1 each help; combined they keep MD_global near MD_local up to load ~0.6")
	return t, nil
}
