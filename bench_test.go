package sda_test

// Benchmark harness: one benchmark per table/figure of the paper (the
// experiment that regenerates it, at reduced fidelity so `go test -bench`
// stays tractable) plus micro-benchmarks of the simulation kernel and the
// strategy implementations. Regenerate the full-fidelity numbers with
// cmd/sdaexp.

import (
	"runtime"
	"testing"

	sda "repro"
	"repro/internal/des"
	"repro/internal/exp"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/serve"
	isda "repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/task"
)

// benchOptions is the fidelity used by the per-figure benchmarks.
func benchOptions(seed uint64) exp.Options {
	return exp.Options{Duration: 2000, Warmup: 200, Replications: 1, Seed: seed}
}

// benchExperiment runs one experiment per iteration with a fresh seed.
func benchExperiment(b *testing.B, run func(exp.Options) (*exp.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := run(benchOptions(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if tbl.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig5UD regenerates Figure 5 (UD baseline across load).
func BenchmarkFig5UD(b *testing.B) { benchExperiment(b, exp.Fig5) }

// BenchmarkFig6DIV regenerates Figure 6 (UD vs DIV-1 vs DIV-2).
func BenchmarkFig6DIV(b *testing.B) { benchExperiment(b, exp.Fig6) }

// BenchmarkFig7GF regenerates Figure 7 (UD vs DIV-1 vs GF).
func BenchmarkFig7GF(b *testing.B) { benchExperiment(b, exp.Fig7) }

// BenchmarkFig9ChooseX regenerates Figure 9 (MD vs x for n = 2, 4, 6).
func BenchmarkFig9ChooseX(b *testing.B) { benchExperiment(b, exp.Fig9) }

// BenchmarkFig10FracLocalDIV regenerates Figure 10(a) (DIV-1 vs frac_local).
func BenchmarkFig10FracLocalDIV(b *testing.B) { benchExperiment(b, exp.Fig10a) }

// BenchmarkFig10FracLocalGF regenerates Figure 10(b) (GF vs frac_local).
func BenchmarkFig10FracLocalGF(b *testing.B) { benchExperiment(b, exp.Fig10b) }

// BenchmarkFig11Abort regenerates Figure 11 (process-manager abortion).
func BenchmarkFig11Abort(b *testing.B) { benchExperiment(b, exp.Fig11) }

// BenchmarkLocalAbort regenerates the Section 7.3 local-abortion ablation.
func BenchmarkLocalAbort(b *testing.B) { benchExperiment(b, exp.LocalAbort) }

// BenchmarkFig12Classes regenerates Figure 12 (non-homogeneous classes).
func BenchmarkFig12Classes(b *testing.B) { benchExperiment(b, exp.Fig12) }

// BenchmarkFig15Combined regenerates Figure 15 (SSP x PSP on Figure 14's
// task graph, the Table 2 combinations).
func BenchmarkFig15Combined(b *testing.B) { benchExperiment(b, exp.Fig15) }

// BenchmarkSSPStrategies regenerates the serial-strategy ablation.
func BenchmarkSSPStrategies(b *testing.B) { benchExperiment(b, exp.SerialStrategies) }

// BenchmarkPexError regenerates the EQF estimation-error ablation.
func BenchmarkPexError(b *testing.B) { benchExperiment(b, exp.PexError) }

// --- simulation throughput ------------------------------------------------

// BenchmarkSimulationBaseline measures end-to-end simulator throughput on
// the Table 1 baseline; the metric of interest is events/op vs ns/op.
func BenchmarkSimulationBaseline(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.Default()
		cfg.Duration = 5000
		cfg.Warmup = 0
		cfg.Replications = 1
		cfg.Seed = uint64(i + 1)
		rep, err := sim.RunOne(cfg, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// benchSimulationObs measures end-to-end simulator throughput with the
// telemetry layer configured as given; the Off/On pair quantifies the
// observability overhead (docs/OBSERVABILITY.md records the numbers).
func benchSimulationObs(b *testing.B, o obs.Options) {
	b.Helper()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.Default()
		cfg.Duration = 5000
		cfg.Warmup = 0
		cfg.Replications = 1
		cfg.Seed = uint64(i + 1)
		cfg.Obs = o
		rep, err := sim.RunOne(cfg, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSimulationObsOff guards the disabled-telemetry path: it must
// match BenchmarkSimulationBaseline (zero telemetry overhead when off).
func BenchmarkSimulationObsOff(b *testing.B) {
	benchSimulationObs(b, obs.Options{})
}

// BenchmarkSimulationObsOn measures the full telemetry layer: spans,
// counters, per-node gauges and the 50-unit sampler.
func BenchmarkSimulationObsOn(b *testing.B) {
	benchSimulationObs(b, obs.Options{Enabled: true})
}

// benchSimulationFlight measures end-to-end throughput with the kernel
// flight recorder detached or attached. Off must be alloc-identical to
// BenchmarkSimulationBaseline (a nil tap is two predictable branches on
// the hot path); On stays well inside the documented 2x observability
// budget — the recorder only bumps fixed-size counters and histograms.
func benchSimulationFlight(b *testing.B, on bool) {
	b.Helper()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.Default()
		cfg.Duration = 5000
		cfg.Warmup = 0
		cfg.Replications = 1
		cfg.Seed = uint64(i + 1)
		cfg.Flight = on
		rep, err := sim.RunOne(cfg, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSimulationFlightOff guards the detached-recorder path.
func BenchmarkSimulationFlightOff(b *testing.B) { benchSimulationFlight(b, false) }

// BenchmarkSimulationFlightOn runs with the flight recorder attached:
// every schedule/fire/cancel tick updates the calendar-depth, event-mix
// and scheduling-distance statistics.
func BenchmarkSimulationFlightOn(b *testing.B) { benchSimulationFlight(b, true) }

// benchSimulationObsReps runs an 8-replication observed batch through
// sim.Run at the given worker count and equal retention budget. The
// Sequential/Parallel pair measures the speedup unlocked by sharded
// telemetry: observed replications used to be forced onto one worker,
// now they fan out and the shards merge deterministically.
func benchSimulationObsReps(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.Default()
		cfg.Duration = 5000
		cfg.Warmup = 0
		cfg.Replications = 8
		cfg.Workers = workers
		cfg.Seed = uint64(i + 1)
		cfg.Obs = obs.Options{Enabled: true, MaxSpans: 1 << 14}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range res.Reps {
			events += rep.Events
		}
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSimulationObsOnSequential is the old forced-sequential
// observed path: 8 replications on one worker.
func BenchmarkSimulationObsOnSequential(b *testing.B) {
	benchSimulationObsReps(b, 1)
}

// BenchmarkSimulationObsOnParallel runs the same 8 observed
// replications on all cores; the merged output is bit-identical to the
// sequential run, so ns/op is the only thing that changes.
func BenchmarkSimulationObsOnParallel(b *testing.B) {
	benchSimulationObsReps(b, runtime.GOMAXPROCS(0))
}

// benchSimulationBlame measures telemetry-instrumented throughput with or
// without the live observability hub attached at the shipped -serve
// defaults (publish cadence serve.DefaultEvery, no HTTP listener). Each
// publish renders a full snapshot — Prometheus exposition, span tail,
// and a miss-cause attribution pass over the tail window. The Off/On
// pair bounds the attribution overhead within the documented <2x obs
// budget.
func benchSimulationBlame(b *testing.B, withHub bool) {
	b.Helper()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.Default()
		cfg.Duration = 5000
		cfg.Warmup = 0
		cfg.Replications = 1
		cfg.Seed = uint64(i + 1)
		cfg.Obs = obs.Options{Enabled: true}
		if withHub {
			hub := serve.NewHub(0)
			cfg.OnSystem = func(sys *sim.System) {
				hub.Attach(sys.Telemetry(), serve.RunInfo{
					Label:   "bench",
					Horizon: float64(sys.Horizon()),
				}, serve.DefaultEvery)
			}
		}
		rep, err := sim.RunOne(cfg, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSimulationBlameOff is the attribution baseline: telemetry on,
// no hub. It should match BenchmarkSimulationObsOn.
func BenchmarkSimulationBlameOff(b *testing.B) { benchSimulationBlame(b, false) }

// BenchmarkSimulationBlameOn attaches the live hub at the default
// publish cadence — a windowed attribution analysis every
// serve.DefaultEvery sampler ticks.
func BenchmarkSimulationBlameOn(b *testing.B) { benchSimulationBlame(b, true) }

// BenchmarkSimulationHighLoad stresses the queues at load 0.9.
func BenchmarkSimulationHighLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.Default()
		cfg.Spec.Load = 0.9
		cfg.Duration = 3000
		cfg.Warmup = 0
		cfg.Replications = 1
		if _, err := sim.RunOne(cfg, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- kernel micro-benchmarks ----------------------------------------------

// BenchmarkEngineEventChurn measures raw event throughput of the DES
// kernel: schedule-and-fire cycles through a 1k-event calendar.
func BenchmarkEngineEventChurn(b *testing.B) {
	b.ReportAllocs()
	eng := des.New()
	const depth = 1000
	var tick func()
	remaining := b.N
	tick = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		if _, err := eng.After(1, tick); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < depth; i++ {
		if _, err := eng.After(simtime.Duration(i), tick); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	eng.Run()
}

// benchNodeQueueChurn measures the node waiting queue in isolation: one
// remove + recycle + acquire + submit cycle against a 256-deep heap, with
// the server parked on a long-running item so nothing dequeues. The
// steady state must report 0 allocs/op — the cycle runs entirely on the
// item pool and the inline heap.
func benchNodeQueueChurn(b *testing.B, p node.Policy) {
	b.ReportAllocs()
	eng := des.New()
	n := node.New(0, eng, node.WithPolicy(p))

	blocker, err := task.NewSimple("blocker", 0, simtime.Duration(1e18))
	if err != nil {
		b.Fatal(err)
	}
	if err := n.Submit(node.NewItem(blocker)); err != nil {
		b.Fatal(err)
	}

	// Twice as many tasks as the queue window, so a task is never handed
	// to a new item while a previous incarnation still queues it.
	const window = 256
	tasks := make([]*task.Task, 2*window)
	for i := range tasks {
		tk, err := task.NewSimple("", 0, simtime.Duration(1+i%7))
		if err != nil {
			b.Fatal(err)
		}
		tk.VirtualDeadline = simtime.Time((i * 2654435761) % 4096)
		tasks[i] = tk
	}
	refs := make([]node.ItemRef, window)
	for i := 0; i < window; i++ {
		it := n.AcquireItem(tasks[i])
		if err := n.Submit(it); err != nil {
			b.Fatal(err)
		}
		refs[i] = it.Ref()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// gcd(31, window) = 1, so the victim slot sweeps the whole window
		// and removals hit arbitrary heap positions.
		j := (i*31 + 17) % window
		if it := refs[j].Item(); it != nil {
			n.Remove(it)
			n.RecycleItem(it)
		}
		it := n.AcquireItem(tasks[(window+i)%len(tasks)])
		if err := n.Submit(it); err != nil {
			b.Fatal(err)
		}
		refs[j] = it.Ref()
	}
}

// BenchmarkNodeQueueChurn tracks the inline heap under EDF (the paper's
// policy) and LLF (whose laxity key shifts as remaining demand differs).
func BenchmarkNodeQueueChurn(b *testing.B) {
	b.Run("EDF", func(b *testing.B) { benchNodeQueueChurn(b, node.EDF{}) })
	b.Run("LLF", func(b *testing.B) { benchNodeQueueChurn(b, node.LLF{}) })
}

// BenchmarkBurstArrival measures the batch scheduling path: one
// des.ScheduleBatch of 512 events (the bulk-heapify regime) followed by a
// full drain, as when a workload driver or trace replay arms a burst of
// arrivals at once.
func BenchmarkBurstArrival(b *testing.B) {
	b.ReportAllocs()
	eng := des.New()
	const burst = 512
	batch := make([]des.BatchEntry, burst)
	nop := func(any) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := eng.Now()
		for k := range batch {
			batch[k] = des.BatchEntry{
				At:   base.Add(simtime.Duration(1 + (k*2654435761)%1024)),
				Call: nop,
			}
		}
		if err := eng.ScheduleBatch(batch); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
	b.ReportMetric(burst, "events/op")
}

// BenchmarkStrategyAssignment measures the per-subtask cost of each PSP
// strategy's deadline computation.
func BenchmarkStrategyAssignment(b *testing.B) {
	strategies := []isda.PSP{isda.UD{}, isda.MustDiv(1), isda.GF{}}
	for _, s := range strategies {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = s.AssignParallel(simtime.Time(i), simtime.Time(i+10), 4)
			}
		})
	}
}

// BenchmarkEQFAssignment measures the EQF serial decomposition over a
// five-stage pipeline.
func BenchmarkEQFAssignment(b *testing.B) {
	b.ReportAllocs()
	pexs := []simtime.Duration{1, 1, 1, 1, 1}
	eqf := isda.EQF{}
	for i := 0; i < b.N; i++ {
		_ = eqf.AssignSerial(simtime.Time(i), simtime.Time(i+25), pexs)
	}
}

// BenchmarkTaskParse measures the bracket-notation parser on the
// Figure 14 pipeline.
func BenchmarkTaskParse(b *testing.B) {
	b.ReportAllocs()
	const src = "[init@0:1 [a@1:1||b@2:1||c@3:1||d@4:1] mid@5:1 [e@1:1||f@2:1||g@3:1||h@4:1] fin@0:1]"
	for i := 0; i < b.N; i++ {
		if _, err := task.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlan measures the offline recursive SDA algorithm on the
// Figure 14 pipeline.
func BenchmarkPlan(b *testing.B) {
	b.ReportAllocs()
	tree := task.MustParse("[init@0:1 [a@1:1||b@2:1||c@3:1||d@4:1] mid@5:1 [e@1:1||f@2:1||g@3:1||h@4:1] fin@0:1]")
	for i := 0; i < b.N; i++ {
		if err := sda.Plan(tree, 0, 25, sda.EQF(), sda.Div(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoliciesAblation regenerates the local-policy ablation.
func BenchmarkPoliciesAblation(b *testing.B) { benchExperiment(b, exp.Policies) }

// BenchmarkFIFOAblation regenerates the FIFO-vs-EDF ablation.
func BenchmarkFIFOAblation(b *testing.B) { benchExperiment(b, exp.FIFOAblation) }

// BenchmarkGFDeltaAblation regenerates the GF-encoding ablation.
func BenchmarkGFDeltaAblation(b *testing.B) { benchExperiment(b, exp.GFDelta) }

// BenchmarkDivNoFanoutAblation regenerates the flat-divisor ablation.
func BenchmarkDivNoFanoutAblation(b *testing.B) { benchExperiment(b, exp.DivNoFanout) }

// BenchmarkPreemptionAblation regenerates the preemption ablation.
func BenchmarkPreemptionAblation(b *testing.B) { benchExperiment(b, exp.Preemption) }

// BenchmarkServiceDistAblation regenerates the service-variability ablation.
func BenchmarkServiceDistAblation(b *testing.B) { benchExperiment(b, exp.ServiceDist) }

// BenchmarkNetworkPipeline regenerates the network-as-resource experiment.
func BenchmarkNetworkPipeline(b *testing.B) { benchExperiment(b, exp.Network) }

// BenchmarkScaleAblation regenerates the system-size sweep.
func BenchmarkScaleAblation(b *testing.B) { benchExperiment(b, exp.Scale) }
