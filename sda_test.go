package sda_test

import (
	"math"
	"testing"

	sda "repro"
)

func TestPublicTaskBuilding(t *testing.T) {
	a, err := sda.NewSimple("a", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sda.NewSimple("b", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sda.NewParallel("p", a, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sda.NewSimple("c", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sda.NewSerial("g", par, c)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != sda.KindSerial || g.CriticalPath() != 4 {
		t.Errorf("kind %v path %v, want serial/4", g.Kind, g.CriticalPath())
	}
}

func TestPublicParse(t *testing.T) {
	g, err := sda.Parse("[a@0:1 [b@1:2 || c@2:2] d@0:1]")
	if err != nil {
		t.Fatal(err)
	}
	if g.CountSimple() != 4 {
		t.Errorf("CountSimple = %d, want 4", g.CountSimple())
	}
	if _, err := sda.Parse("["); err == nil {
		t.Error("bad input accepted")
	}
}

func TestPublicPlan(t *testing.T) {
	g := sda.MustParse("[a@0:5 b@1:5]")
	if err := sda.Plan(g, 0, 20, sda.EQF(), sda.Div(1)); err != nil {
		t.Fatal(err)
	}
	// EQF: slack 10, stage a gets 5 -> dl 10.
	if g.Children[0].VirtualDeadline != 10 {
		t.Errorf("stage a vdl = %v, want 10", g.Children[0].VirtualDeadline)
	}
}

func TestPublicStrategyParsers(t *testing.T) {
	for _, name := range []string{"UD", "DIV-1", "GF"} {
		if _, err := sda.ParsePSP(name); err != nil {
			t.Errorf("ParsePSP(%q): %v", name, err)
		}
	}
	for _, name := range []string{"UD", "ED", "EQS", "EQF"} {
		if _, err := sda.ParseSSP(name); err != nil {
			t.Errorf("ParseSSP(%q): %v", name, err)
		}
	}
}

func TestPublicRun(t *testing.T) {
	cfg := sda.Default()
	cfg.Duration = 5000
	cfg.Warmup = 200
	cfg.Replications = 1
	cfg.PSP = sda.Div(1)
	res, err := sda.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Globals == 0 || res.Locals == 0 {
		t.Fatal("no tasks simulated")
	}
	if math.Abs(res.Utilization.Mean-0.5) > 0.08 {
		t.Errorf("utilization = %v, want ~0.5", res.Utilization.Mean)
	}
}

func TestPublicRunOne(t *testing.T) {
	cfg := sda.Default()
	cfg.Duration = 3000
	cfg.Warmup = 100
	rep, err := sda.RunOne(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Locals == 0 {
		t.Error("no locals")
	}
}

func TestPublicWorkloadTypes(t *testing.T) {
	spec := sda.Baseline(sda.SerialParallel{Stages: 5, Fanout: 4})
	spec.Estimator = sda.Noisy{Factor: 2}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := sda.Default()
	cfg.Spec = spec
	cfg.Duration = 2000
	cfg.Warmup = 100
	cfg.Abort = sda.AbortProcessManager
	cfg.Policy = sda.FIFOPolicy()
	if _, err := sda.Run(cfg); err != nil {
		t.Fatal(err)
	}
}
