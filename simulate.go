package sda

import (
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config describes one simulated experiment: workload, strategies,
// abortion policy and run lengths.
type Config = sim.Config

// Result aggregates replications into per-class miss-rate intervals.
type Result = sim.Result

// RepResult is the outcome of a single replication.
type RepResult = sim.RepResult

// Interval is a point estimate with a 95% confidence half-width.
type Interval = stats.Interval

// AbortMode selects the overload-management policy.
type AbortMode = sim.AbortMode

// Abortion policies (paper Section 7.3).
const (
	AbortNone           = sim.AbortNone
	AbortProcessManager = sim.AbortProcessManager
	AbortLocalScheduler = sim.AbortLocalScheduler
)

// Default returns the paper's Table 1 baseline configuration.
func Default() Config { return sim.Default() }

// Run executes the configured replications and aggregates the results.
func Run(cfg Config) (Result, error) { return sim.Run(cfg) }

// RunOne executes a single replication with an explicit seed.
func RunOne(cfg Config, seed uint64) (RepResult, error) { return sim.RunOne(cfg, seed) }

// Spec is the stochastic workload parameterisation (Section 5).
type Spec = workload.Spec

// Factory produces global task shapes.
type Factory = workload.Factory

// Estimator models predicted execution times (pex).
type Estimator = workload.Estimator

// Workload factories.
type (
	// FixedParallel builds n parallel subtasks at n distinct nodes
	// (the baseline's global tasks).
	FixedParallel = workload.FixedParallel
	// UniformParallel draws the fan-out uniformly from [Min..Max]
	// (Section 7.4's non-homogeneous mix).
	UniformParallel = workload.UniformParallel
	// SerialParallel builds the Figure 14 pipeline: serial stages with
	// alternating parallel groups.
	SerialParallel = workload.SerialParallel
)

// Execution-time estimators.
type (
	// Exact is the oracle: pex = ex.
	Exact = workload.Exact
	// Mean predicts the distribution mean for every subtask.
	Mean = workload.Mean
	// Noisy multiplies ex by a log-uniform factor in [1/F, F].
	Noisy = workload.Noisy
)

// Baseline returns the Table 1 workload with the given factory.
func Baseline(factory Factory) Spec { return workload.Baseline(factory) }

// QueuePolicy orders a node's waiting queue.
type QueuePolicy = node.Policy

// EDFPolicy returns the earliest-deadline-first queue policy (default).
func EDFPolicy() QueuePolicy { return node.EDF{} }

// FIFOPolicy returns the deadline-blind FIFO queue policy (ablation).
func FIFOPolicy() QueuePolicy { return node.FIFO{} }

// Dist is a service-time distribution family for the workload model.
type Dist = workload.Dist

// Service-time distribution families (the paper's model is Exponential).
type (
	// Exponential service (SCV 1), the paper's model.
	Exponential = workload.Exponential
	// Deterministic service (SCV 0).
	Deterministic = workload.Deterministic
	// ErlangK service, the sum of K exponential phases (SCV 1/K).
	ErlangK = workload.ErlangK
	// HyperExp service with a chosen SCV > 1.
	HyperExp = workload.HyperExp
)

// NetworkPipeline is the Figure 14 pipeline with explicit network-hop
// subtasks queueing at dedicated network nodes (the paper's Section 3.2
// treatment of communication as a resource).
type NetworkPipeline = workload.NetworkPipeline
