package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceGantt(t *testing.T) {
	if err := run([]string{"-until", "10", "-width", "40"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestTraceLog(t *testing.T) {
	if err := run([]string{"-until", "5", "-log"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFlagErrors(t *testing.T) {
	if err := run([]string{"-psp", "bogus"}, io.Discard); err == nil {
		t.Error("bad psp accepted")
	}
	if err := run([]string{"-ssp", "bogus"}, io.Discard); err == nil {
		t.Error("bad ssp accepted")
	}
}

// TestTraceFlagConflict pins the mode split: the causal-trace exports
// replace the event log, so mixing the flag pairs is an error.
func TestTraceFlagConflict(t *testing.T) {
	for _, args := range [][]string{
		{"-chrome", "x.json", "-log"},
		{"-chrome", "x.json", "-jsonl"},
		{"-tree", "x.jsonl", "-log"},
		{"-tree", "x.jsonl", "-jsonl", "-chrome", "x.json"},
	} {
		err := run(args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "conflict") {
			t.Errorf("run(%v) = %v, want conflict error", args, err)
		}
	}
}

// TestTraceBadPath: an unwritable export path surfaces as an error, not
// a partial success.
func TestTraceBadPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "x.json")
	if err := run([]string{"-until", "50", "-chrome", path}, io.Discard); err == nil {
		t.Fatal("run with unwritable -chrome path succeeded")
	}
}

// TestTraceEmptyRun: a horizon too short for any global task to be
// released yields a diagnostic instead of empty export files.
func TestTraceEmptyRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.jsonl")
	err := run([]string{"-until", "0.0001", "-tree", path}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "empty run") {
		t.Fatalf("run on an empty horizon = %v, want empty-run error", err)
	}
}

// TestTraceExports runs a short traced simulation and checks both export
// files exist, parse, and agree with the printed summary.
func TestTraceExports(t *testing.T) {
	dir := t.TempDir()
	treePath := filepath.Join(dir, "trees.jsonl")
	chromePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-until", "200", "-tree", treePath, "-chrome", chromePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "causal trace:") {
		t.Errorf("missing summary line in output:\n%s", out.String())
	}

	tf, err := os.Open(treePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	trees := 0
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var tree struct {
			Root  uint64 `json:"root"`
			Spans int    `json:"spans"`
		}
		if err := json.Unmarshal(sc.Bytes(), &tree); err != nil {
			t.Fatalf("tree line %d: %v", trees+1, err)
		}
		if tree.Root == 0 || tree.Spans < 1 {
			t.Errorf("tree line %d: root=%d spans=%d", trees+1, tree.Root, tree.Spans)
		}
		trees++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if trees == 0 {
		t.Error("tree export is empty")
	}

	cb, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(cb, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Errorf("chrome export: displayTimeUnit=%q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}
