package main

import "testing"

func TestTraceGantt(t *testing.T) {
	if err := run([]string{"-until", "10", "-width", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceLog(t *testing.T) {
	if err := run([]string{"-until", "5", "-log"}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFlagErrors(t *testing.T) {
	if err := run([]string{"-psp", "bogus"}); err == nil {
		t.Error("bad psp accepted")
	}
	if err := run([]string{"-ssp", "bogus"}); err == nil {
		t.Error("bad ssp accepted")
	}
}
