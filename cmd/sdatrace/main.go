// Command sdatrace runs a short simulation with scheduling-event tracing
// and renders an ASCII Gantt chart of node activity plus (optionally) the
// raw event log, either human-readable (-log) or as JSONL records sharing
// the obs span schema (-jsonl). It makes the effect of a deadline-
// assignment strategy visible at the level of individual subtasks cutting
// in line.
//
// Example:
//
//	sdatrace -load 0.7 -psp GF -until 30 -width 100
//	sdatrace -psp DIV-1 -log | head -50
//	sdatrace -psp DIV-1 -jsonl | head -50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdatrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdatrace", flag.ContinueOnError)
	var (
		k       = fs.Int("k", 3, "number of nodes")
		n       = fs.Int("n", 3, "parallel subtasks per global task")
		load    = fs.Float64("load", 0.7, "normalized load")
		pspName = fs.String("psp", "DIV-1", "parallel strategy")
		sspName = fs.String("ssp", "UD", "serial strategy")
		until   = fs.Float64("until", 30, "traced simulated time")
		width   = fs.Int("width", 100, "gantt width in columns")
		showLog = fs.Bool("log", false, "print the raw event log instead of the chart")
		jsonl   = fs.Bool("jsonl", false, "print the event log as JSON lines (shared telemetry record schema)")
		seed    = fs.Uint64("seed", 7, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr := trace.New()
	cfg := sim.Default()
	cfg.Spec.K = *k
	cfg.Spec.Load = *load
	cfg.Spec.Factory = workload.FixedParallel{N: *n}
	cfg.Duration = simtime.Duration(*until)
	cfg.Warmup = 0
	cfg.Replications = 1
	cfg.Observer = tr

	var err error
	if cfg.PSP, err = sda.ParsePSP(*pspName); err != nil {
		return err
	}
	if cfg.SSP, err = sda.ParseSSP(*sspName); err != nil {
		return err
	}
	if _, err := sim.RunOne(cfg, *seed); err != nil {
		return err
	}

	if *jsonl {
		return tr.WriteJSONL(os.Stdout)
	}
	if *showLog {
		fmt.Print(tr.Log())
		return nil
	}
	fmt.Printf("strategy %s-%s, load %g, k=%d, n=%d (seed %d)\n\n",
		cfg.SSP.Name(), cfg.PSP.Name(), *load, *k, *n, *seed)
	fmt.Print(tr.Gantt(0, simtime.Time(*until), *width))
	return nil
}
