// Command sdatrace runs a short simulation with scheduling-event tracing
// and renders an ASCII Gantt chart of node activity plus (optionally) the
// raw event log, either human-readable (-log) or as JSONL records sharing
// the obs span schema (-jsonl). It makes the effect of a deadline-
// assignment strategy visible at the level of individual subtasks cutting
// in line.
//
// With -chrome or -tree the run is telemetry-instrumented instead and the
// causal trace — spans plus the predecessor/abort/retry/inject edge
// stream, assembled into per-global-task trees — is exported as a
// Perfetto-loadable Chrome trace-event file and/or deterministic JSONL
// (see internal/obs/tracetree and docs/OBSERVABILITY.md). The four output
// modes are mutually exclusive pairs: -log/-jsonl render the scheduling
// event log, -chrome/-tree render the causal trace.
//
// Example:
//
//	sdatrace -load 0.7 -psp GF -until 30 -width 100
//	sdatrace -psp DIV-1 -log | head -50
//	sdatrace -psp DIV-1 -jsonl | head -50
//	sdatrace -psp DIV-1 -until 2000 -chrome trace.json -tree trees.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/tracetree"
	"repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdatrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sdatrace", flag.ContinueOnError)
	var (
		k       = fs.Int("k", 3, "number of nodes")
		n       = fs.Int("n", 3, "parallel subtasks per global task")
		load    = fs.Float64("load", 0.7, "normalized load")
		pspName = fs.String("psp", "DIV-1", "parallel strategy")
		sspName = fs.String("ssp", "UD", "serial strategy")
		until   = fs.Float64("until", 30, "traced simulated time")
		width   = fs.Int("width", 100, "gantt width in columns")
		showLog = fs.Bool("log", false, "print the raw event log instead of the chart")
		jsonl   = fs.Bool("jsonl", false, "print the event log as JSON lines (shared telemetry record schema)")
		seed    = fs.Uint64("seed", 7, "random seed")

		chromePath = fs.String("chrome", "", "assemble the causal trace and write it as a Chrome trace-event JSON file (load in Perfetto)")
		treePath   = fs.String("tree", "", "assemble the causal trace and write the trace trees as JSONL")
		maxSpans   = fs.Int("obs-max-spans", 0, "span retention budget for -chrome/-tree (0 = default); eviction degrades the trace deterministically")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wantTrace := *chromePath != "" || *treePath != ""
	if wantTrace && (*showLog || *jsonl) {
		return errors.New("-chrome/-tree conflict with -log/-jsonl: the causal trace replaces the event log")
	}

	cfg := sim.Default()
	cfg.Spec.K = *k
	cfg.Spec.Load = *load
	cfg.Spec.Factory = workload.FixedParallel{N: *n}
	cfg.Duration = simtime.Duration(*until)
	cfg.Warmup = 0
	cfg.Replications = 1

	var err error
	if cfg.PSP, err = sda.ParsePSP(*pspName); err != nil {
		return err
	}
	if cfg.SSP, err = sda.ParseSSP(*sspName); err != nil {
		return err
	}

	if wantTrace {
		return runTrace(cfg, *seed, *maxSpans, *chromePath, *treePath, w)
	}

	tr := trace.New()
	cfg.Observer = tr
	if _, err := sim.RunOne(cfg, *seed); err != nil {
		return err
	}
	if *jsonl {
		return tr.WriteJSONL(w)
	}
	if *showLog {
		fmt.Fprint(w, tr.Log())
		return nil
	}
	fmt.Fprintf(w, "strategy %s-%s, load %g, k=%d, n=%d (seed %d)\n\n",
		cfg.SSP.Name(), cfg.PSP.Name(), *load, *k, *n, *seed)
	fmt.Fprint(w, tr.Gantt(0, simtime.Time(*until), *width))
	return nil
}

// runTrace runs one telemetry-instrumented replication and exports the
// assembled causal trace.
func runTrace(cfg sim.Config, seed uint64, maxSpans int, chromePath, treePath string, w io.Writer) error {
	cfg.Obs = obs.Options{Enabled: true, MaxSpans: maxSpans}
	sys, err := sim.NewSystem(cfg, seed)
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	sys.Finish(sys.Horizon())
	tel := sys.Telemetry()

	spans := tel.Spans()
	recs := make([]obs.Record, 0, len(spans))
	recs = append(recs, spans...)
	recs = append(recs, tel.Edges()...)
	forest := tracetree.Build(recs)
	if len(forest.Trees) == 0 {
		return fmt.Errorf("empty run: no global-task spans to assemble (until=%v, load=%g)", cfg.Duration, cfg.Spec.Load)
	}

	export := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if treePath != "" {
		if err := export(treePath, forest.WriteTrees); err != nil {
			return err
		}
	}
	if chromePath != "" {
		if err := export(chromePath, forest.WriteChrome); err != nil {
			return err
		}
	}
	links := 0
	for _, t := range forest.Trees {
		links += len(t.Links)
	}
	fmt.Fprintf(w, "causal trace: %d trees, %d spans, %d links (%d orphan spans, %d dropped edges, %d evicted spans)\n",
		len(forest.Trees), len(spans), links, forest.Orphans, forest.Dropped, tel.DroppedSpans())
	if treePath != "" {
		fmt.Fprintf(w, "trees:  %s\n", treePath)
	}
	if chromePath != "" {
		fmt.Fprintf(w, "chrome: %s (open in https://ui.perfetto.dev)\n", chromePath)
	}
	return nil
}
