package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestScenarioExport drives sdaobs over a shipped scenario and checks
// that every export artifact is produced and well-formed.
func TestScenarioExport(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{
		"-scenario", "../../testdata/scenarios/baseline_div.json",
		"-out", dir,
		"-sample-every", "25",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "hash ") {
		t.Errorf("output missing trace hash:\n%s", out.String())
	}

	spans, err := os.ReadFile(filepath.Join(dir, obs.SpansFile))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(spans)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var rec obs.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("spans.jsonl line %d invalid: %v", lines, err)
		}
		if rec.Type != "span" {
			t.Fatalf("spans.jsonl line %d has type %q", lines, rec.Type)
		}
	}
	if lines == 0 {
		t.Fatalf("spans.jsonl is empty")
	}

	prom, err := os.ReadFile(filepath.Join(dir, obs.MetricsFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE sda_sched_enqueues_total counter", "# TYPE sda_node_queue_depth gauge", "sda_assigned_slack_bucket"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics.prom missing %q", want)
		}
	}

	csv, err := os.ReadFile(filepath.Join(dir, obs.TimeSeriesFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "time,queue_node0") {
		t.Errorf("timeseries.csv header unexpected: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
	if strings.Count(string(csv), "\n") < 2 {
		t.Errorf("timeseries.csv has no data rows")
	}

	svg, err := os.ReadFile(filepath.Join(dir, obs.DashboardFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg ") {
		t.Errorf("dashboard.svg does not start with an <svg> element")
	}

	// The export is deterministic: a second run yields identical bytes.
	dir2 := t.TempDir()
	var out2 strings.Builder
	if err := run([]string{
		"-scenario", "../../testdata/scenarios/baseline_div.json",
		"-out", dir2,
		"-sample-every", "25",
	}, &out2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{obs.SpansFile, obs.MetricsFile, obs.TimeSeriesFile, obs.DashboardFile, obs.SummaryFile} {
		a, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between identical runs", name)
		}
	}
}

// TestSyntheticMergedExport exercises the multi-replication synthetic
// mode: the export is the cross-replication merge (exemplars included)
// and its bytes do not depend on the worker count.
func TestSyntheticMergedExport(t *testing.T) {
	export := func(workers string) map[string]string {
		dir := t.TempDir()
		var out strings.Builder
		err := run([]string{
			"-out", dir,
			"-load", "0.6",
			"-duration", "2000",
			"-warmup", "100",
			"-reps", "3",
			"-workers", workers,
			"-max-spans", "128",
		}, &out)
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
		files := map[string]string{}
		for _, name := range []string{obs.SpansFile, obs.ExemplarsFile, obs.MetricsFile,
			obs.DashboardFile, obs.SummaryFile, "blame.md", "blame.json"} {
			b, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("missing merged export %s: %v", name, err)
			}
			if len(b) == 0 {
				t.Fatalf("merged export %s is empty", name)
			}
			files[name] = string(b)
		}
		return files
	}
	seq, par := export("1"), export("3")
	for name, want := range seq {
		if par[name] != want {
			t.Errorf("%s differs between -workers 1 and -workers 3", name)
		}
	}
}

// TestSyntheticExport exercises the non-scenario mode end to end.
func TestSyntheticExport(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{
		"-out", dir,
		"-load", "0.6",
		"-duration", "3000",
		"-warmup", "100",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "md_local") {
		t.Errorf("output missing replication stats:\n%s", out.String())
	}
	for _, name := range []string{obs.SpansFile, obs.MetricsFile, obs.TimeSeriesFile, obs.DashboardFile, obs.SummaryFile} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing export %s: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("export %s is empty", name)
		}
	}
}
