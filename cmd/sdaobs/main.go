// Command sdaobs runs one telemetry-instrumented simulation and exports
// the unified telemetry bundle: task-lifecycle spans as JSONL, the
// instrument catalog in Prometheus text exposition format, the sampled
// time series as CSV, an SVG queue-depth/slack dashboard, a
// human-readable summary, and the miss-cause attribution report
// (blame.md / blame.json). Telemetry is clocked on simulated time and
// never perturbs the run, so the export is bit-identical on every
// invocation with the same inputs.
//
// Modes:
//
//	sdaobs -scenario testdata/scenarios/baseline_div.json -out obs-out
//	sdaobs -load 0.6 -psp DIV-1 -duration 20000 -out obs-out
//	sdaobs -load 0.6 -reps 8 -workers 4 -out obs-out   # cross-replication merge
//
// With -reps above 1 every replication runs observed (concurrently under
// -workers) and the export is the deterministic cross-replication merge:
// spans, exemplars, metrics, quantile dashboard, summary — bit-identical
// at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/obs/tracetree"
	"repro/internal/scenario"
	"repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdaobs:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sdaobs", flag.ContinueOnError)
	var (
		scenarioFile = fs.String("scenario", "", "run this scenario file instead of a synthetic workload")
		outDir       = fs.String("out", "obs-out", "directory for the telemetry export")
		sampleEvery  = fs.Float64("sample-every", 50, "sampler cadence in simulated time units")
		maxSamples   = fs.Int("max-samples", 4096, "time-series ring capacity (oldest samples overwritten)")
		maxSpans     = fs.Int("max-spans", 1<<16, "span store capacity (further spans dropped and counted)")

		k       = fs.Int("k", 6, "number of nodes (synthetic mode)")
		n       = fs.Int("n", 4, "parallel subtasks per global task (synthetic mode)")
		load    = fs.Float64("load", 0.5, "normalized load (synthetic mode)")
		sspName = fs.String("ssp", "UD", "serial strategy (synthetic mode)")
		pspName = fs.String("psp", "UD", "parallel strategy (synthetic mode)")
		dur     = fs.Float64("duration", 20000, "measured simulated time (synthetic mode)")
		warmup  = fs.Float64("warmup", 1000, "warmup time (synthetic mode)")
		seed    = fs.Uint64("seed", 1, "random seed (synthetic mode)")
		reps    = fs.Int("reps", 1, "replications (synthetic mode); above 1 the export is the cross-replication merge")
		workers = fs.Int("workers", 1, "replications run concurrently (synthetic mode); the merged export is identical at any worker count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := obs.Options{
		Enabled:     true,
		SampleEvery: simtime.Duration(*sampleEvery),
		MaxSamples:  *maxSamples,
		MaxSpans:    *maxSpans,
	}

	var (
		tel    *obs.Telemetry // single-shard modes: scenario, -reps 1
		merged *obs.Merged    // multi-replication synthetic mode
	)
	if *scenarioFile != "" {
		sc, err := scenario.Load(*scenarioFile)
		if err != nil {
			return err
		}
		out, scTel, err := scenario.RunObserved(sc, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "scenario %s: %d trace events, hash %s\n", sc.Name, out.TraceEvents, out.TraceHash)
		for _, f := range out.Failures {
			fmt.Fprintf(w, "scenario failure: %s\n", f)
		}
		tel = scTel
	} else {
		cfg := sim.Default()
		cfg.Spec.K = *k
		cfg.Spec.Factory = workload.FixedParallel{N: *n}
		cfg.Spec.Load = *load
		cfg.Duration = simtime.Duration(*dur)
		cfg.Warmup = simtime.Duration(*warmup)
		cfg.Replications = *reps
		cfg.Workers = *workers
		cfg.Seed = *seed
		cfg.Obs = o
		var err error
		if cfg.SSP, err = sda.ParseSSP(*sspName); err != nil {
			return err
		}
		if cfg.PSP, err = sda.ParsePSP(*pspName); err != nil {
			return err
		}
		if *reps > 1 {
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "synthetic %s load=%g x%d reps: md_local %s  md_global %s  util %s\n",
				cfg.Name(), *load, *reps, res.MDLocal, res.MDGlobal, res.Utilization)
			merged = res.Obs
		} else {
			sys, err := sim.NewSystem(cfg, *seed)
			if err != nil {
				return err
			}
			if err := sys.Start(); err != nil {
				return err
			}
			rep := sys.Finish(sys.Horizon())
			fmt.Fprintf(w, "synthetic %s load=%g: md_local %.4f  md_global %.4f  util %.4f\n",
				cfg.Name(), *load, rep.MDLocal, rep.MDGlobal, rep.Utilization)
			tel = sys.Telemetry()
		}
	}

	// Single-shard exports keep the per-run extras (sampled time series);
	// the merged export folds every replication's shard in index order.
	var (
		paths   []string
		summary string
		blamed  []obs.Record
		traced  []obs.Record // spans + causal edges, for the trace trees
		err     error
	)
	if merged != nil {
		if paths, err = merged.ExportDir(*outDir); err != nil {
			return err
		}
		snap := merged.Snapshot()
		summary = snap.Summary()
		blamed = snap.SpansForAnalysis()
		traced = append(append(traced, snap.Spans...), snap.Edges...)
	} else {
		if paths, err = tel.ExportDir(*outDir); err != nil {
			return err
		}
		summary = tel.Summary()
		// Retained spans plus exemplars: under a tight -max-spans budget
		// the worst and latest spans per kind are still present.
		snap := tel.Snapshot(0)
		blamed = snap.SpansForAnalysis()
		traced = append(append(traced, snap.Spans...), snap.Edges...)
	}
	// The attribution report rides along with the bundle (the obs package
	// cannot depend on attrib, so the cmd writes it).
	rpt := attrib.Analyze(blamed)
	mdPath := filepath.Join(*outDir, "blame.md")
	if err := os.WriteFile(mdPath, []byte(rpt.Markdown()), 0o644); err != nil {
		return err
	}
	jsonBody, err := rpt.JSON()
	if err != nil {
		return err
	}
	jsonPath := filepath.Join(*outDir, "blame.json")
	if err := os.WriteFile(jsonPath, jsonBody, 0o644); err != nil {
		return err
	}
	paths = append(paths, mdPath, jsonPath)
	// The causal trace rides along the same way (obs cannot depend on
	// tracetree's consumers): trees as deterministic JSONL plus the
	// Perfetto-loadable Chrome trace, both bit-identical at any worker
	// count.
	forest := tracetree.Build(traced)
	treePath := filepath.Join(*outDir, "tracetree.jsonl")
	chromePath := filepath.Join(*outDir, "trace.chrome.json")
	for _, exp := range []struct {
		path  string
		write func(io.Writer) error
	}{{treePath, forest.WriteTrees}, {chromePath, forest.WriteChrome}} {
		f, err := os.Create(exp.path)
		if err != nil {
			return err
		}
		if err := exp.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, exp.path)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, summary)
	fmt.Fprintf(w, "exported: %s\n", strings.Join(paths, " "))
	return nil
}
