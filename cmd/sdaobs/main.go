// Command sdaobs runs one telemetry-instrumented simulation and exports
// the unified telemetry bundle: task-lifecycle spans as JSONL, the
// instrument catalog in Prometheus text exposition format, the sampled
// time series as CSV, an SVG queue-depth/slack dashboard, a
// human-readable summary, and the miss-cause attribution report
// (blame.md / blame.json). Telemetry is clocked on simulated time and
// never perturbs the run, so the export is bit-identical on every
// invocation with the same inputs.
//
// Two modes:
//
//	sdaobs -scenario testdata/scenarios/baseline_div.json -out obs-out
//	sdaobs -load 0.6 -psp DIV-1 -duration 20000 -out obs-out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/scenario"
	"repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdaobs:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sdaobs", flag.ContinueOnError)
	var (
		scenarioFile = fs.String("scenario", "", "run this scenario file instead of a synthetic workload")
		outDir       = fs.String("out", "obs-out", "directory for the telemetry export")
		sampleEvery  = fs.Float64("sample-every", 50, "sampler cadence in simulated time units")
		maxSamples   = fs.Int("max-samples", 4096, "time-series ring capacity (oldest samples overwritten)")
		maxSpans     = fs.Int("max-spans", 1<<16, "span store capacity (further spans dropped and counted)")

		k       = fs.Int("k", 6, "number of nodes (synthetic mode)")
		n       = fs.Int("n", 4, "parallel subtasks per global task (synthetic mode)")
		load    = fs.Float64("load", 0.5, "normalized load (synthetic mode)")
		sspName = fs.String("ssp", "UD", "serial strategy (synthetic mode)")
		pspName = fs.String("psp", "UD", "parallel strategy (synthetic mode)")
		dur     = fs.Float64("duration", 20000, "measured simulated time (synthetic mode)")
		warmup  = fs.Float64("warmup", 1000, "warmup time (synthetic mode)")
		seed    = fs.Uint64("seed", 1, "random seed (synthetic mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := obs.Options{
		Enabled:     true,
		SampleEvery: simtime.Duration(*sampleEvery),
		MaxSamples:  *maxSamples,
		MaxSpans:    *maxSpans,
	}

	var tel *obs.Telemetry
	if *scenarioFile != "" {
		sc, err := scenario.Load(*scenarioFile)
		if err != nil {
			return err
		}
		out, scTel, err := scenario.RunObserved(sc, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "scenario %s: %d trace events, hash %s\n", sc.Name, out.TraceEvents, out.TraceHash)
		for _, f := range out.Failures {
			fmt.Fprintf(w, "scenario failure: %s\n", f)
		}
		tel = scTel
	} else {
		cfg := sim.Default()
		cfg.Spec.K = *k
		cfg.Spec.Factory = workload.FixedParallel{N: *n}
		cfg.Spec.Load = *load
		cfg.Duration = simtime.Duration(*dur)
		cfg.Warmup = simtime.Duration(*warmup)
		cfg.Replications = 1
		cfg.Obs = o
		var err error
		if cfg.SSP, err = sda.ParseSSP(*sspName); err != nil {
			return err
		}
		if cfg.PSP, err = sda.ParsePSP(*pspName); err != nil {
			return err
		}
		sys, err := sim.NewSystem(cfg, *seed)
		if err != nil {
			return err
		}
		if err := sys.Start(); err != nil {
			return err
		}
		rep := sys.Finish(sys.Horizon())
		fmt.Fprintf(w, "synthetic %s load=%g: md_local %.4f  md_global %.4f  util %.4f\n",
			cfg.Name(), *load, rep.MDLocal, rep.MDGlobal, rep.Utilization)
		tel = sys.Telemetry()
	}

	paths, err := tel.ExportDir(*outDir)
	if err != nil {
		return err
	}
	// The attribution report rides along with the bundle (the obs package
	// cannot depend on attrib, so the cmd writes it).
	rpt := attrib.Analyze(tel.Spans())
	mdPath := filepath.Join(*outDir, "blame.md")
	if err := os.WriteFile(mdPath, []byte(rpt.Markdown()), 0o644); err != nil {
		return err
	}
	jsonBody, err := rpt.JSON()
	if err != nil {
		return err
	}
	jsonPath := filepath.Join(*outDir, "blame.json")
	if err := os.WriteFile(jsonPath, jsonBody, 0o644); err != nil {
		return err
	}
	paths = append(paths, mdPath, jsonPath)
	fmt.Fprintln(w)
	fmt.Fprint(w, tel.Summary())
	fmt.Fprintf(w, "exported: %s\n", strings.Join(paths, " "))
	return nil
}
