package main

import (
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig5", "fig15", "table1", "table2", "svcdist", "network"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestStaticTables(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Earliest Deadline First") {
		t.Errorf("table1 output wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-exp", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "EQF-DIV1") {
		t.Errorf("table2 output wrong:\n%s", buf.String())
	}
}

func TestRunOneExperimentAllFormats(t *testing.T) {
	for _, format := range []string{"text", "csv", "json", "svg"} {
		var buf strings.Builder
		err := run([]string{
			"-exp", "gfdelta", "-format", format,
			"-duration", "1500", "-reps", "1", "-quick",
		}, &buf)
		if err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %s produced no output", format)
		}
	}
}

func TestErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{}, &buf); err == nil {
		t.Error("no experiment selected should error")
	}
	if err := run([]string{"-exp", "bogus"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-exp", "gfdelta", "-format", "bogus", "-quick", "-duration", "500"}, &buf); err == nil {
		t.Error("unknown format should error")
	}
}
