// Command sdaexp regenerates the paper's tables and figures.
//
// Examples:
//
//	sdaexp -list
//	sdaexp -exp fig7                 # one figure at full fidelity
//	sdaexp -exp all -quick           # smoke-run everything
//	sdaexp -exp fig5 -format csv > fig5.csv
//	sdaexp -exp table1
//	sdaexp -obs obs-out -quick       # export telemetry of the baseline cell
//	sdaexp -exp fig7 -cpuprofile cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/sim"
	"repro/internal/simtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdaexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdaexp", flag.ContinueOnError)
	var (
		id       = fs.String("exp", "", "experiment id, 'all', 'table1' or 'table2' (see -list)")
		list     = fs.Bool("list", false, "list available experiments")
		format   = fs.String("format", "text", "output format: text | csv | json | svg")
		quick    = fs.Bool("quick", false, "low-fidelity smoke run")
		duration = fs.Float64("duration", 0, "override simulated time per replication")
		reps     = fs.Int("reps", 0, "override replications")
		seed     = fs.Uint64("seed", 0, "override master seed")
		workers  = fs.Int("workers", 0, "bound cell+replication parallelism (0 = GOMAXPROCS cells, sequential replications)")

		obsDir     = fs.String("obs", "", "run the baseline cell with telemetry and export the cross-replication merge (spans/exemplars/metrics/dashboard/summary) into this directory")
		obsSpans   = fs.Int("obs-max-spans", 0, "per-replication span retention budget for -obs/-serve (0 = default 65536)")
		serveAddr  = fs.String("serve", "", "serve live telemetry of the instrumented baseline run on this address (e.g. :8080)")
		serveEvry  = fs.Int("serve-every", serve.DefaultEvery, "publish a live snapshot every N sampler ticks")
		serveHold  = fs.Duration("serve-hold", 0, "keep the observability server up this long after the instrumented run")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		exectrace  = fs.String("exectrace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Title)
		}
		fmt.Fprintf(out, "%-12s %s\n", "table1", "Baseline setting (Table 1)")
		fmt.Fprintf(out, "%-12s %s\n", "table2", "SSP/PSP combinations (Table 2)")
		return nil
	}
	if *id == "" && *obsDir == "" && *serveAddr == "" {
		return fmt.Errorf("no experiment selected; use -exp <id>, -obs <dir>, -serve <addr> or -list")
	}

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *duration > 0 {
		opts.Duration = simtime.Duration(*duration)
	}
	if *reps > 0 {
		opts.Replications = *reps
	}
	if *seed > 0 {
		opts.Seed = *seed
	}
	if *workers > 0 {
		opts.Workers = *workers
	}

	var srv *serve.Server
	if *serveAddr != "" {
		s, err := serve.Start(*serveAddr, serve.NewHub(0))
		if err != nil {
			return err
		}
		srv = s
		defer srv.Close()
		fmt.Fprintf(out, "live telemetry on http://%s (endpoints: /metrics /progress /spans /blame)\n", srv.Addr())
	}

	if *obsDir != "" || srv != nil {
		if err := exportObserved(opts, *obsSpans, *obsDir, out, srv, *serveEvry, *serveHold); err != nil {
			return err
		}
		if *id == "" {
			return nil
		}
	}

	switch *id {
	case "table1":
		fmt.Fprint(out, exp.Table1())
		return nil
	case "table2":
		fmt.Fprint(out, exp.Table2())
		return nil
	case "all":
		for _, e := range exp.All() {
			if err := runOne(e, opts, *format, out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		e, ok := exp.Find(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q; known: %s",
				*id, strings.Join(exp.IDs(), ", "))
		}
		return runOne(e, opts, *format, out)
	}
}

// exportObserved runs the Table 1 baseline cell with telemetry at the
// selected fidelity — every replication observed, on all opts.Workers —
// optionally serving the shards live via srv, and writes the merged
// telemetry export into dir (skipped when dir is empty, for -serve-only
// invocations).
func exportObserved(opts exp.Options, maxSpans int, dir string, out io.Writer, srv *serve.Server, every int, hold time.Duration) error {
	cfg := exp.BaselineConfig(opts)
	cfg.Obs = obs.Options{Enabled: true, MaxSpans: maxSpans}
	info := serve.RunInfo{
		Label:        cfg.Name(),
		Replications: cfg.Replications,
		Horizon:      float64(cfg.Warmup + cfg.Duration),
	}
	if srv != nil {
		hub := srv.Hub()
		cfg.OnReplication = func(sys *sim.System) {
			hub.Attach(sys.Telemetry(), info, every)
		}
		cfg.OnReplicationDone = func(sys *sim.System) {
			hub.Publish(sys.Telemetry(), info, float64(sys.Horizon()), true)
		}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	if srv != nil {
		srv.Hub().Finalize(res.Obs, info)
	}
	fmt.Fprint(out, res.Obs.Snapshot().Summary())
	if dir != "" {
		paths, err := res.Obs.ExportDir(dir)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "telemetry exported: %s\n", strings.Join(paths, " "))
	}
	if srv != nil && hold > 0 {
		fmt.Fprintf(out, "holding observability server for %v\n", hold)
		time.Sleep(hold)
	}
	return nil
}

func runOne(e exp.Experiment, opts exp.Options, format string, out io.Writer) error {
	tbl, err := e.Run(opts)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	switch format {
	case "text":
		fmt.Fprint(out, tbl.Text())
	case "csv":
		fmt.Fprint(out, tbl.CSV())
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tbl); err != nil {
			return fmt.Errorf("encode %s: %w", e.ID, err)
		}
	case "svg":
		svg, err := tbl.SVG()
		if err != nil {
			return fmt.Errorf("render %s: %w", e.ID, err)
		}
		fmt.Fprint(out, svg)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
