package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func scenarioDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	body := `{
		"name": "tiny", "description": "smoke scenario", "seed": 5, "duration": 200,
		"workload": {"k": 3, "load": 0.5, "frac_local": 0.8, "n": 2},
		"events": [{"at": 50, "action": "crash", "node": 1},
		           {"at": 90, "action": "restart", "node": 1}],
		"assert": {"utilization_min": 0.1}
	}`
	if err := os.WriteFile(filepath.Join(dir, "tiny.json"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestBlessThenPass(t *testing.T) {
	dir := scenarioDir(t)
	var out strings.Builder
	if err := run([]string{"-dir", dir, "-bless"}, &out); err != nil {
		t.Fatalf("bless: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "golden.txt")); err != nil {
		t.Fatalf("golden.txt not written: %v", err)
	}
	out.Reset()
	if err := run([]string{"-dir", dir, "-v"}, &out); err != nil {
		t.Fatalf("verify after bless: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS tiny") {
		t.Errorf("output lacks PASS line:\n%s", out.String())
	}
}

func TestHashDriftFails(t *testing.T) {
	dir := scenarioDir(t)
	golden := filepath.Join(dir, "golden.txt")
	if err := os.WriteFile(golden, []byte("tiny 0000000000000000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-dir", dir}, &out)
	if err == nil {
		t.Fatalf("want failure on hash drift, got pass:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "differs from golden") {
		t.Errorf("output lacks drift message:\n%s", out.String())
	}
}

func TestMissingGoldenFails(t *testing.T) {
	dir := scenarioDir(t)
	var out strings.Builder
	if err := run([]string{"-dir", dir}, &out); err == nil {
		t.Fatalf("want failure without golden hashes, got pass:\n%s", out.String())
	}
}

func TestUnknownScenarioName(t *testing.T) {
	dir := scenarioDir(t)
	var out strings.Builder
	if err := run([]string{"-dir", dir, "nope"}, &out); err == nil {
		t.Fatal("want error for unknown scenario name")
	}
}

func TestList(t *testing.T) {
	dir := scenarioDir(t)
	var out strings.Builder
	if err := run([]string{"-dir", dir, "-list"}, &out); err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out.String(), "tiny") || !strings.Contains(out.String(), "smoke scenario") {
		t.Errorf("list output incomplete:\n%s", out.String())
	}
}

// TestRepoSuitePasses runs the real checked-in suite end to end, exactly
// as CI does.
func TestRepoSuitePasses(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dir", filepath.Join("..", "..", "testdata", "scenarios")}, &out); err != nil {
		t.Fatalf("repo scenario suite failed: %v\n%s", err, out.String())
	}
}
