// Command sdascen runs the deterministic scenario & fault-injection
// suite: every scenario file under -dir is executed with the invariant
// checker attached, its assertions are evaluated, and its canonical trace
// hash is compared against the golden registry (golden.txt in the same
// directory).
//
// Usage:
//
//	sdascen                     # run all scenarios in testdata/scenarios
//	sdascen crash-restart       # run scenarios by name
//	sdascen -v                  # include per-scenario metrics
//	sdascen -bless              # re-bless golden hashes after a deliberate
//	                            # behaviour change (commit the diff!)
//	sdascen -stress-scale 2 -summary out.txt stress-zone-5k
//	                            # stress smoke run at half fleet size,
//	                            # deterministic summary written for cmp
//
// Stress scenarios (fleet template generator + seeded chaos engine, see
// docs/STRESS.md) have no golden hash; they are judged by the always-on
// invariants, the analytic oracle and the scenario's assertion bands, and
// their outcome summaries are byte-identical across runs and worker
// counts.
//
// Exit status is non-zero when any scenario fails an assertion, violates
// an invariant, or drifts from its golden hash.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdascen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sdascen", flag.ContinueOnError)
	var (
		dir     = fs.String("dir", "testdata/scenarios", "directory holding scenario *.json files")
		bless   = fs.Bool("bless", false, "rewrite the golden hash registry from this run")
		list    = fs.Bool("list", false, "list scenarios and exit")
		verbose = fs.Bool("v", false, "print per-scenario metrics")
		obsDir   = fs.String("obs", "", "run with telemetry and export spans/metrics/timeseries/dashboard per scenario into this directory")
		obsSpans = fs.Int("obs-max-spans", 0, "per-run span retention budget (0 = default 65536); evicted spans are counted, aggregates stay exact")

		flightDir = fs.String("flight", "", "attach the kernel flight recorder and write each scenario's lookahead-feasibility report (<name>.flight.md + .prom) into this directory")

		serveAddr = fs.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :8080); implies telemetry")
		serveEvry = fs.Int("serve-every", serve.DefaultEvery, "publish a live snapshot every N sampler ticks")
		serveHold = fs.Duration("serve-hold", 0, "keep the observability server up this long after the suite")

		stressScale   = fs.Int("stress-scale", 1, "divide stress-scenario fleet sizes by this factor (smoke runs; band assertions are skipped when > 1)")
		stressWorkers = fs.Int("stress-workers", 0, "replication workers for stress scenarios (0 = GOMAXPROCS); results are identical at every count")
		summaryPath   = fs.String("summary", "", "append each stress scenario's deterministic outcome summary to this file (\"-\" = stdout), for cmp-based determinism checks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scs, err := scenario.LoadDir(*dir)
	if err != nil {
		return err
	}
	if len(scs) == 0 {
		return fmt.Errorf("no scenario files in %s", *dir)
	}
	if picked := fs.Args(); len(picked) > 0 {
		byName := make(map[string]*scenario.Scenario, len(scs))
		for _, sc := range scs {
			byName[sc.Name] = sc
		}
		var subset []*scenario.Scenario
		for _, name := range picked {
			sc, ok := byName[name]
			if !ok {
				return fmt.Errorf("unknown scenario %q (use -list)", name)
			}
			subset = append(subset, sc)
		}
		scs = subset
	}
	if *list {
		for _, sc := range scs {
			kind := ""
			if sc.IsStress() {
				kind = fmt.Sprintf("[stress %d nodes] ", sc.Stress.Fleet.Nodes)
			}
			fmt.Fprintf(w, "%-24s %s%s\n", sc.Name, kind, sc.Description)
		}
		return nil
	}

	var summary io.Writer
	if *summaryPath == "-" {
		summary = w
	} else if *summaryPath != "" {
		f, err := os.Create(*summaryPath)
		if err != nil {
			return err
		}
		defer f.Close()
		summary = f
	}

	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return err
		}
	}
	// writeFlight exports one scenario's flight-recorder findings: the
	// markdown lookahead-feasibility report and the Prometheus exposition.
	writeFlight := func(name string, fl *des.Flight) error {
		md := filepath.Join(*flightDir, name+".flight.md")
		if err := os.WriteFile(md, []byte(fl.Report(name)), 0o644); err != nil {
			return err
		}
		var buf strings.Builder
		if err := fl.WritePrometheus(&buf); err != nil {
			return err
		}
		prom := filepath.Join(*flightDir, name+".flight.prom")
		if err := os.WriteFile(prom, []byte(buf.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "     flight report: %s\n", md)
		return nil
	}

	goldenPath := filepath.Join(*dir, scenario.GoldenFile)
	golden, err := scenario.ReadGolden(goldenPath)
	if err != nil {
		return err
	}

	// Live observability: one server spans the whole suite; each scenario
	// attaches the hub to its own telemetry sampler and publishes its
	// final snapshot when it ends (the hub starts a fresh run for the
	// next scenario). Snapshots publish inside existing read-only sampler
	// ticks, so golden hashes are unaffected by -serve.
	var srv *serve.Server
	if *serveAddr != "" {
		s, err := serve.Start(*serveAddr, serve.NewHub(0))
		if err != nil {
			return err
		}
		srv = s
		defer srv.Close()
		fmt.Fprintf(w, "live telemetry on http://%s (endpoints: /metrics /progress /spans /blame)\n", srv.Addr())
		defer func() {
			if *serveHold > 0 {
				fmt.Fprintf(w, "holding observability server for %v\n", *serveHold)
				time.Sleep(*serveHold)
			}
		}()
	}

	failed := 0
	for i, sc := range scs {
		if sc.IsStress() {
			// Stress scenarios: templated fleet + seeded chaos, no golden
			// hash (judged by invariants, the oracle and the Assert bands).
			sc.ApplyStressScale(*stressScale)
			var (
				out *scenario.Outcome
				fl  *des.Flight
				err error
			)
			if *flightDir != "" {
				out, fl, err = scenario.RunStressFlight(sc, *stressWorkers)
			} else {
				out, err = scenario.RunStress(sc, *stressWorkers)
			}
			if err != nil {
				return fmt.Errorf("%s: %w", sc.Name, err)
			}
			status := "PASS"
			if len(out.Failures) > 0 {
				status = "FAIL"
				failed++
			}
			st := out.Stress
			fmt.Fprintf(w, "%s %-24s stress: %d nodes, %d servers, %d reps, %d timeline events, %d crashes\n",
				status, sc.Name, st.Nodes, st.TotalServers, st.Replications, st.Timeline, st.Chaos.Crashes)
			if fl != nil {
				if err := writeFlight(sc.Name, fl); err != nil {
					return err
				}
			}
			if *verbose {
				for r, rep := range out.Reps {
					fmt.Fprintf(w, "     rep %d: md_local %.4f  md_global %.4f  missed_work %.4f  util %.4f  locals %d  globals %d\n",
						r, rep.MDLocal, rep.MDGlobal, rep.MissedWork, rep.Utilization, rep.Locals, rep.Globals)
				}
			}
			for _, f := range out.Failures {
				fmt.Fprintf(w, "     FAIL: %s\n", f)
			}
			if summary != nil {
				if _, err := io.WriteString(summary, out.Summary()); err != nil {
					return err
				}
			}
			continue
		}
		var (
			out *scenario.Outcome
			tel *obs.Telemetry
			fl  *des.Flight
			err error
		)
		if *obsDir != "" || srv != nil || *flightDir != "" {
			// Telemetry and the flight recorder never perturb the run, so
			// the golden checks below still apply unchanged.
			var onSystem func(*sim.System)
			info := serve.RunInfo{Label: fmt.Sprintf("%s (%d/%d)", sc.Name, i+1, len(scs)), Replications: 1}
			if srv != nil || *flightDir != "" {
				onSystem = func(sys *sim.System) {
					if *flightDir != "" {
						fl = des.NewFlight(len(sys.Nodes))
						sys.Eng.AttachFlight(fl)
					}
					if srv != nil {
						info.Horizon = float64(sys.Horizon())
						srv.Hub().Attach(sys.Telemetry(), info, *serveEvry)
					}
				}
			}
			out, tel, err = scenario.RunObservedWith(sc, obs.Options{MaxSpans: *obsSpans}, onSystem)
			if err == nil && srv != nil && tel != nil {
				srv.Hub().Publish(tel, info, info.Horizon, true)
			}
		} else {
			out, err = scenario.Run(sc)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		fails := append([]string(nil), out.Failures...)
		if !*bless {
			switch want, ok := golden[sc.Name]; {
			case !ok:
				fails = append(fails, fmt.Sprintf("no golden hash (got %s; run sdascen -bless)", out.TraceHash))
			case want != out.TraceHash:
				fails = append(fails, fmt.Sprintf("trace hash %s differs from golden %s", out.TraceHash, want))
			}
		}
		status := "PASS"
		if len(fails) > 0 {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%s %-24s %d events, hash %s\n", status, sc.Name, out.TraceEvents, out.TraceHash)
		if fl != nil {
			if err := writeFlight(sc.Name, fl); err != nil {
				return err
			}
		}
		if tel != nil && *obsDir != "" {
			exportDir := filepath.Join(*obsDir, sc.Name)
			if _, err := tel.ExportDir(exportDir); err != nil {
				return fmt.Errorf("%s: %w", sc.Name, err)
			}
			fmt.Fprintf(w, "     telemetry exported to %s\n", exportDir)
		}
		if *verbose {
			fmt.Fprintf(w, "     md_local %.4f  md_global %.4f  md_subtask %.4f  missed_work %.4f  util %.4f  locals %d  globals %d\n",
				out.Rep.MDLocal, out.Rep.MDGlobal, out.Rep.MDSubtask,
				out.Rep.MissedWork, out.Rep.Utilization, out.Rep.Locals, out.Rep.Globals)
		}
		for _, f := range fails {
			fmt.Fprintf(w, "     FAIL: %s\n", f)
		}
		golden[sc.Name] = out.TraceHash
	}
	if *bless {
		if failed > 0 {
			return fmt.Errorf("%d scenario(s) failed; fix them before blessing", failed)
		}
		if err := scenario.WriteGolden(goldenPath, golden); err != nil {
			return err
		}
		fmt.Fprintf(w, "blessed %d hashes into %s\n", len(golden), goldenPath)
		return nil
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(scs))
	}
	fmt.Fprintf(w, "all %d scenarios passed\n", len(scs))
	return nil
}
