// Command sdasim runs a single deadline-assignment simulation and prints a
// report: per-class miss rates with confidence intervals, missed-work
// fraction and utilization.
//
// Example:
//
//	sdasim -load 0.5 -psp DIV-1 -duration 200000 -reps 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/sda"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdasim", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 6, "number of nodes")
		n         = fs.Int("n", 4, "parallel subtasks per global task")
		load      = fs.Float64("load", 0.5, "normalized load (0 <= load < 1 for stability)")
		fracLocal = fs.Float64("frac-local", 0.75, "fraction of load due to local tasks")
		slackMin  = fs.Float64("slack-min", 1.25, "minimum task slack")
		slackMax  = fs.Float64("slack-max", 5.0, "maximum task slack")
		gSlackMin = fs.Float64("global-slack-min", 0, "global-task slack minimum (0 = use local range)")
		gSlackMax = fs.Float64("global-slack-max", 0, "global-task slack maximum (0 = use local range)")
		factory   = fs.String("factory", "parallel", "global task shape: parallel | uniform | serial | layered | forkjoin | cond")
		stages    = fs.Int("stages", 5, "stages for -factory serial/forkjoin/cond, layers for -factory layered")
		edgeProb  = fs.Float64("edge-prob", 0.3, "extra-edge probability for -factory layered")
		crossProb = fs.Float64("cross-prob", 0.3, "stage-skip edge probability for -factory forkjoin")
		branches  = fs.Int("branches", 2, "gates per conditional fork for -factory cond")
		probsFlag = fs.String("branch-probs", "", "comma-separated branch probabilities for -factory cond (each in (0,1], summing to 1; empty = uniform)")
		sspName   = fs.String("ssp", "UD", "serial strategy: "+strings.Join(sda.SSPNames(), " | "))
		pspName   = fs.String("psp", "UD", "parallel strategy: "+strings.Join(sda.PSPNames(), " | "))
		abort     = fs.String("abort", "none", "abortion: none | pm | local")
		policy    = fs.String("policy", "edf", "local queue policy: edf | llf | sjf | fifo")
		estimator = fs.String("estimator", "exact", "pex model: exact | mean | noisy:<factor>")
		duration  = fs.Float64("duration", 50000, "measured simulated time per replication")
		warmup    = fs.Float64("warmup", 1000, "warmup time (not measured)")
		reps      = fs.Int("reps", 2, "independent replications")
		workers   = fs.Int("workers", 1, "replications run concurrently (results and merged telemetry are identical at any worker count)")
		servers   = fs.Int("servers", 1, "servers per node (M/M/c extension)")
		seed      = fs.Uint64("seed", 1, "master random seed")
		recordTo  = fs.String("record-trace", "", "write the synthesized arrival trace to this file and exit")
		replayOf  = fs.String("replay-trace", "", "drive the simulation from a recorded trace file")
		obsDir    = fs.String("obs", "", "instrument the run with telemetry and export the cross-replication merge (spans/exemplars/metrics/dashboard/summary) into this directory")
		obsSpans  = fs.Int("obs-max-spans", 0, "per-replication span retention budget (0 = default 65536); the merged export trims to the same budget")
		serveAddr = fs.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :8080); implies telemetry")
		serveEvry = fs.Int("serve-every", serve.DefaultEvery, "publish a live snapshot every N sampler ticks")
		serveHold = fs.Duration("serve-hold", 0, "keep the observability server up this long after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sim.Default()
	cfg.Spec.K = *k
	cfg.Spec.Load = *load
	cfg.Spec.FracLocal = *fracLocal
	cfg.Spec.SlackMin = *slackMin
	cfg.Spec.SlackMax = *slackMax
	cfg.Spec.GlobalSlackMin = *gSlackMin
	cfg.Spec.GlobalSlackMax = *gSlackMax
	cfg.Duration = simtime.Duration(*duration)
	cfg.Warmup = simtime.Duration(*warmup)
	cfg.Replications = *reps
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.Servers = *servers

	switch *factory {
	case "parallel":
		cfg.Spec.Factory = workload.FixedParallel{N: *n}
	case "uniform":
		cfg.Spec.Factory = workload.UniformParallel{Min: 2, Max: *n}
	case "serial":
		cfg.Spec.Factory = workload.SerialParallel{Stages: *stages, Fanout: *n}
	case "layered":
		cfg.Spec.Factory = nil
		cfg.Spec.DagFactory = workload.LayeredDag{Layers: *stages, MinWidth: 1, MaxWidth: *n, EdgeProb: *edgeProb}
	case "forkjoin":
		cfg.Spec.Factory = nil
		cfg.Spec.DagFactory = workload.ForkJoinDag{Stages: *stages, Fanout: *n, CrossProb: *crossProb}
	case "cond":
		probs, err := parseProbs(*probsFlag)
		if err != nil {
			return err
		}
		cfg.Spec.Factory = nil
		cfg.Spec.DagFactory = workload.ConditionalDag{Stages: *stages, Branches: *branches, Width: *n, Probs: probs}
	default:
		return fmt.Errorf("unknown factory %q", *factory)
	}

	est, err := parseEstimator(*estimator)
	if err != nil {
		return err
	}
	cfg.Spec.Estimator = est

	if cfg.SSP, err = sda.ParseSSP(*sspName); err != nil {
		return err
	}
	if cfg.PSP, err = sda.ParsePSP(*pspName); err != nil {
		return err
	}

	switch *abort {
	case "none":
		cfg.Abort = sim.AbortNone
	case "pm":
		cfg.Abort = sim.AbortProcessManager
	case "local":
		cfg.Abort = sim.AbortLocalScheduler
	default:
		return fmt.Errorf("unknown abort mode %q", *abort)
	}

	pol, ok := node.ParsePolicy(*policy)
	if !ok {
		return fmt.Errorf("unknown policy %q", *policy)
	}
	cfg.Policy = pol

	// Telemetry rides on the run itself: it never perturbs results, and
	// observed replications still execute on all -workers (each owns a
	// private shard; shards merge deterministically into Result.Obs).
	if *obsDir != "" || *serveAddr != "" {
		cfg.Obs = obs.Options{Enabled: true, MaxSpans: *obsSpans}
	}

	// Live observability: every replication attaches its own sampler hook
	// and publishes its final snapshot when it finishes, so /metrics,
	// /progress and /summary aggregate across replications — including
	// concurrent ones. Publishing happens inside existing read-only
	// sampler ticks, so results are bit-identical with and without -serve.
	var (
		srv  *serve.Server
		info serve.RunInfo
	)
	if *serveAddr != "" {
		hub := serve.NewHub(0)
		s, err := serve.Start(*serveAddr, hub)
		if err != nil {
			return err
		}
		srv = s
		defer srv.Close()
		fmt.Printf("live telemetry on http://%s (endpoints: /metrics /progress /spans /blame)\n", srv.Addr())
		info = serve.RunInfo{
			Label:        cfg.Name(),
			Replications: cfg.Replications,
			Horizon:      float64(cfg.Warmup + cfg.Duration),
		}
		cfg.OnReplication = func(sys *sim.System) {
			hub.Attach(sys.Telemetry(), info, *serveEvry)
		}
		cfg.OnReplicationDone = func(sys *sim.System) {
			hub.Publish(sys.Telemetry(), info, float64(sys.Horizon()), true)
		}
		defer func() {
			if *serveHold > 0 {
				fmt.Printf("holding observability server for %v\n", *serveHold)
				time.Sleep(*serveHold)
			}
		}()
	}

	if *recordTo != "" {
		arrivals, err := workload.Synthesize(cfg.Spec, cfg.Seed, simtime.Time(cfg.Warmup+cfg.Duration))
		if err != nil {
			return err
		}
		f, err := os.Create(*recordTo)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := workload.WriteTrace(f, arrivals); err != nil {
			return err
		}
		fmt.Printf("wrote %d arrivals to %s\n", len(arrivals), *recordTo)
		return nil
	}

	if *replayOf != "" {
		f, err := os.Open(*replayOf)
		if err != nil {
			return err
		}
		defer f.Close()
		arrivals, err := workload.ReadTrace(f)
		if err != nil {
			return err
		}
		// Replay builds one system directly, so the live hub attaches via
		// OnSystem and the final snapshot publishes after the replay.
		var replayTel *obs.Telemetry
		if srv != nil {
			cfg.OnSystem = func(sys *sim.System) {
				replayTel = sys.Telemetry()
				srv.Hub().Attach(replayTel, info, *serveEvry)
			}
		}
		rep, err := sim.ReplayTrace(cfg, arrivals)
		if err != nil {
			return err
		}
		if srv != nil && replayTel != nil {
			srv.Hub().Publish(replayTel, info, info.Horizon, true)
		}
		fmt.Printf("replayed %d arrivals from %s\n", len(arrivals), *replayOf)
		fmt.Printf("tasks counted   %d locals, %d globals\n", rep.Locals, rep.Globals)
		fmt.Printf("MD_local        %.4f\n", rep.MDLocal)
		fmt.Printf("MD_subtask      %.4f\n", rep.MDSubtask)
		fmt.Printf("MD_global       %.4f\n", rep.MDGlobal)
		fmt.Printf("missed work     %.4f\n", rep.MissedWork)
		fmt.Printf("utilization     %.4f\n", rep.Utilization)
		return nil
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	printReport(cfg, res)

	if srv != nil {
		// Pin the served artifacts to the exact end-of-run aggregate: from
		// here /metrics, /summary and /blame match the merged export byte
		// for byte.
		srv.Hub().Finalize(res.Obs, info)
	}
	if *obsDir != "" {
		if err := exportMerged(res.Obs, *obsDir); err != nil {
			return err
		}
	}
	return nil
}

// exportMerged writes the run's cross-replication telemetry merge into
// dir: every replication's shard folded in index order, bit-identical at
// any -workers count.
func exportMerged(m *obs.Merged, dir string) error {
	paths, err := m.ExportDir(dir)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(m.Snapshot().Summary())
	fmt.Printf("telemetry exported: %s\n", strings.Join(paths, " "))
	return nil
}

// parseProbs parses the -branch-probs comma list; empty means uniform
// (nil). Range and sum validation is left to the factory's Validate.
func parseProbs(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	probs := make([]float64, len(parts))
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &probs[i]); err != nil {
			return nil, fmt.Errorf("bad branch probability %q in %q", p, s)
		}
	}
	return probs, nil
}

func parseEstimator(s string) (workload.Estimator, error) {
	switch {
	case s == "exact":
		return workload.Exact{}, nil
	case s == "mean":
		return workload.Mean{}, nil
	case strings.HasPrefix(s, "noisy:"):
		var f float64
		if _, err := fmt.Sscanf(s, "noisy:%g", &f); err != nil || f <= 0 {
			return nil, fmt.Errorf("bad noisy estimator %q (want noisy:<factor>)", s)
		}
		return workload.Noisy{Factor: f}, nil
	default:
		return nil, fmt.Errorf("unknown estimator %q", s)
	}
}

func printReport(cfg sim.Config, res sim.Result) {
	fmt.Println(exp.Table1())
	fmt.Printf("strategy        %s\n", cfg.Name())
	fmt.Printf("workload        %s  load=%g  frac_local=%g  k=%d\n",
		cfg.Spec.FactoryName(), cfg.Spec.Load, cfg.Spec.FracLocal, cfg.Spec.K)
	fmt.Printf("abort           %s    queue %s\n", cfg.Abort, cfg.Policy.Name())
	fmt.Printf("replications    %d x %v time units (warmup %v)\n",
		cfg.Replications, cfg.Duration, cfg.Warmup)
	fmt.Println()
	fmt.Printf("tasks counted   %d locals, %d globals\n", res.Locals, res.Globals)
	fmt.Printf("MD_local        %s\n", res.MDLocal)
	fmt.Printf("MD_subtask      %s\n", res.MDSubtask)
	fmt.Printf("MD_global       %s\n", res.MDGlobal)
	if len(res.MDGlobalBy) > 1 {
		for n := 2; n <= 16; n++ {
			if iv, ok := res.MDGlobalBy[n]; ok {
				fmt.Printf("MD_global(n=%d)  %s\n", n, iv)
			}
		}
	}
	fmt.Printf("missed work     %s\n", res.MissedWork)
	fmt.Printf("utilization     %s\n", res.Utilization)
	fmt.Printf("resp local      mean %s   p95 %s\n", res.RespLocalMean, res.RespLocalP95)
	fmt.Printf("resp global     mean %s   p95 %s\n", res.RespGlobalMean, res.RespGlobalP95)
}
