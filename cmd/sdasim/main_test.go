package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestSimRunsQuick(t *testing.T) {
	err := run([]string{"-duration", "800", "-warmup", "50", "-reps", "1", "-psp", "DIV-1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimCondFactory(t *testing.T) {
	err := run([]string{"-factory", "cond", "-n", "2", "-stages", "3",
		"-branches", "2", "-branch-probs", "0.3,0.7",
		"-duration", "800", "-warmup", "50", "-reps", "1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-factory", "bogus"},
		{"-factory", "cond", "-branch-probs", "0.3,0.3"},  // sum != 1
		{"-factory", "cond", "-branch-probs", "1.5,-0.5"}, // out of (0,1]
		{"-factory", "cond", "-branch-probs", "0.5,zap"},  // unparsable
		{"-ssp", "bogus"},
		{"-psp", "bogus"},
		{"-abort", "bogus"},
		{"-policy", "bogus"},
		{"-estimator", "bogus"},
		{"-estimator", "noisy:x"},
		{"-estimator", "noisy:-1"},
		{"-n", "9"}, // 9 parallel subtasks on 6 nodes
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: expected error for %v", i, args)
		}
	}
}

// TestSimMergedObsExport checks -obs on a parallel multi-replication
// run: the export is the cross-replication merge and its bytes do not
// depend on the worker count.
func TestSimMergedObsExport(t *testing.T) {
	export := func(workers string) map[string]string {
		dir := t.TempDir()
		err := run([]string{"-duration", "800", "-warmup", "50", "-reps", "2",
			"-workers", workers, "-obs", dir, "-obs-max-spans", "256"})
		if err != nil {
			t.Fatal(err)
		}
		files := map[string]string{}
		for _, name := range []string{obs.SpansFile, obs.ExemplarsFile, obs.MetricsFile, obs.SummaryFile} {
			b, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("missing merged export %s: %v", name, err)
			}
			if len(b) == 0 {
				t.Fatalf("merged export %s is empty", name)
			}
			files[name] = string(b)
		}
		return files
	}
	seq, par := export("1"), export("2")
	for name, want := range seq {
		if par[name] != want {
			t.Errorf("%s differs between -workers 1 and -workers 2", name)
		}
	}
}

func TestSimRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.txt")
	if err := run([]string{"-duration", "500", "-warmup", "0", "-record-trace", trace}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	if err := run([]string{"-duration", "500", "-warmup", "0", "-psp", "GF", "-replay-trace", trace}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-replay-trace", filepath.Join(dir, "missing.txt")}); err == nil {
		t.Error("missing trace file should error")
	}
}
