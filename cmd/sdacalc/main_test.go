package main

import "testing"

func TestCalcRuns(t *testing.T) {
	args := []string{
		"-deadline", "10", "-ssp", "EQF", "-psp", "DIV-1",
		"[[T11@0:5||T12@1:5||T13@2:5||T14@3:5||T15@4:5] T2@5:5]",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestCalcErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // no expression
		{"-deadline", "10", "a", "b"},        // two expressions
		{"-deadline", "10", "["},             // bad expression
		{"-deadline", "0", "a@0:1"},          // deadline not after arrival
		{"-deadline", "5", "-ssp", "x", "a"}, // bad ssp
		{"-deadline", "5", "-psp", "x", "a"}, // bad psp
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: expected error for %v", i, args)
		}
	}
}

func TestAnalyzeRuns(t *testing.T) {
	cases := [][]string{
		{"-analyze", "[[a@0:2||b@1:3] c@2:1]"},
		{"-analyze", "-dag", "a@0:2 b@1:3 c@2:1 ; a>b a>c b>c"},
		{"-analyze", "-dag", "-deadline", "5", "-m", "2",
			"s@0:1 a@1:2 b@2:4 t@3:1 ; s>a:0.3 s>b:0.7 a>t b>t"},
	}
	for i, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("case %d: %v: %v", i, args, err)
		}
	}
}

// TestAnalyzeErrors pins the error paths of the conditional-DAG analysis
// mode: probabilities outside (0, 1], branch vectors that do not sum to 1,
// and partially annotated branch points must all be rejected.
func TestAnalyzeErrors(t *testing.T) {
	cases := [][]string{
		{"-analyze", "-dag", "s@0:1 a@1:2 b@2:4 ; s>a:1.5 s>b:-0.5"}, // prob outside (0,1]
		{"-analyze", "-dag", "s@0:1 a@1:2 b@2:4 ; s>a:0 s>b:1"},      // zero prob
		{"-analyze", "-dag", "s@0:1 a@1:2 b@2:4 ; s>a:0.3 s>b:0.3"},  // probs sum != 1
		{"-analyze", "-dag", "s@0:1 a@1:2 b@2:4 ; s>a:0.3 s>b"},      // partial annotation
		{"-analyze", "-dag", "a@0:1 b@1:2 ; a>b a>b"},                // bad dag
		{"-analyze", "-m", "0", "a@0:1"},                             // bad processor count
		{"-analyze", "["},                                            // bad tree
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: expected error for %v", i, args)
		}
	}
}
