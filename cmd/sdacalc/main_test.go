package main

import "testing"

func TestCalcRuns(t *testing.T) {
	args := []string{
		"-deadline", "10", "-ssp", "EQF", "-psp", "DIV-1",
		"[[T11@0:5||T12@1:5||T13@2:5||T14@3:5||T15@4:5] T2@5:5]",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestCalcErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // no expression
		{"-deadline", "10", "a", "b"},        // two expressions
		{"-deadline", "10", "["},             // bad expression
		{"-deadline", "0", "a@0:1"},          // deadline not after arrival
		{"-deadline", "5", "-ssp", "x", "a"}, // bad ssp
		{"-deadline", "5", "-psp", "x", "a"}, // bad psp
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: expected error for %v", i, args)
		}
	}
}
