// Command sdacalc is an offline subtask-deadline calculator: it parses a
// serial-parallel task expression, applies an SDA strategy combination,
// and prints the virtual deadline assigned to every subtask.
//
// Example (the paper's introduction example):
//
//	sdacalc -deadline 10 -ssp EQF -psp DIV-1 \
//	    "[[T11@0:5||T12@1:5||T13@2:5||T14@3:5||T15@4:5] T2@5:5]"
//
// With -dag the expression is a precedence DAG instead — vertices
// followed by ';' and a list of edges — and deadlines are assigned over
// its series-parallel decomposition:
//
//	sdacalc -dag -deadline 12 "a@0:2 b@1:3 c@2:1 ; a>b a>c b>c"
//
// With -analyze no deadlines are assigned; instead the analytic
// response-time oracle (internal/analysis) prints volume, critical path,
// and the schedule-independent bounds. DAG edges may carry branch
// probabilities ("a>b:0.3"), making the vertex a conditional branch
// point; the analysis then enumerates every realization:
//
//	sdacalc -analyze -dag -deadline 5 -m 2 "s@0:1 a@1:2 b@2:4 t@3:1 ; s>a:0.3 s>b:0.7 a>t b>t"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/sda"
	"repro/internal/simtime"
	"repro/internal/task"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdacalc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdacalc", flag.ContinueOnError)
	var (
		arrival  = fs.Float64("arrival", 0, "release instant of the global task")
		deadline = fs.Float64("deadline", 0, "end-to-end deadline of the global task")
		sspName  = fs.String("ssp", "EQF", "serial strategy: "+strings.Join(sda.SSPNames(), " | "))
		pspName  = fs.String("psp", "DIV-1", "parallel strategy: "+strings.Join(sda.PSPNames(), " | "))
		dag      = fs.Bool("dag", false, "parse the expression as a precedence DAG ('vertices ; edges')")
		analyze  = fs.Bool("analyze", false, "print analytic response-time bounds instead of assigning deadlines")
		procs    = fs.Int("m", 1, "processors for the Graham-style makespan bound (-analyze)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one task expression, got %d args", fs.NArg())
	}
	ar := simtime.Time(*arrival)
	dl := simtime.Time(*deadline)
	if *analyze {
		if *procs < 1 {
			return fmt.Errorf("-m %d must be >= 1", *procs)
		}
		rel := simtime.Duration(0)
		if dl.After(ar) {
			rel = simtime.Duration(dl.Sub(ar))
		}
		if *dag {
			cd, err := task.ParseCondDag(fs.Arg(0))
			if err != nil {
				return err
			}
			return printCondAnalysis(cd, rel, *procs)
		}
		root, err := task.Parse(fs.Arg(0))
		if err != nil {
			return err
		}
		m, err := analysis.TreeMetrics(root)
		if err != nil {
			return err
		}
		fmt.Printf("task      %s\n", root)
		printMetrics(m, rel, *procs)
		return nil
	}
	ssp, err := sda.ParseSSP(*sspName)
	if err != nil {
		return err
	}
	psp, err := sda.ParsePSP(*pspName)
	if err != nil {
		return err
	}
	if !dl.After(ar) {
		return fmt.Errorf("deadline %v must be after arrival %v", dl, ar)
	}
	if *dag {
		d, err := task.ParseDag(fs.Arg(0))
		if err != nil {
			return err
		}
		if err := sda.PlanDag(d, ar, dl, ssp, psp); err != nil {
			return err
		}
		return printDag(d, ssp, psp, ar, dl)
	}
	root, err := task.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := sda.Plan(root, ar, dl, ssp, psp); err != nil {
		return err
	}

	fmt.Printf("task      %s\n", root)
	fmt.Printf("strategy  %s-%s   arrival %v   deadline %v\n", ssp.Name(), psp.Name(), ar, dl)
	fmt.Printf("critical path %v   total work %v   subtasks %d\n\n",
		root.CriticalPath(), root.TotalWork(), root.CountSimple())
	fmt.Printf("%-24s %-9s %8s %10s %10s %6s\n",
		"subtask", "kind", "node", "release", "virtual dl", "boost")
	printTree(root, 0)
	return nil
}

// printDag renders the planned DAG as a per-vertex table in topological
// order, with predecessor lists in place of the tree indentation.
func printDag(d *task.Dag, ssp sda.SSP, psp sda.PSP, ar, dl simtime.Time) error {
	topo, err := d.TopoOrder()
	if err != nil {
		return err
	}
	fmt.Printf("dag       %s\n", d)
	fmt.Printf("strategy  %s-%s   arrival %v   deadline %v\n", ssp.Name(), psp.Name(), ar, dl)
	fmt.Printf("critical path %v   total work %v   vertices %d   edges %d   depth %d   width %d\n\n",
		d.CriticalPath(), d.TotalWork(), d.Len(), d.EdgeCount(), d.Depth(), d.Width())
	fmt.Printf("%-16s %8s %10s %10s %6s  %s\n",
		"vertex", "node", "release", "virtual dl", "boost", "preds")
	for _, n := range topo {
		t := n.Task
		boost := ""
		if t.PriorityBoost {
			boost = "GF"
		}
		preds := make([]string, 0, len(n.Preds()))
		for _, p := range n.Preds() {
			preds = append(preds, p.Task.Name)
		}
		pred := "-"
		if len(preds) > 0 {
			pred = strings.Join(preds, ",")
		}
		fmt.Printf("%-16s %8d %10v %10v %6s  %s\n",
			t.Name, t.Node, t.Arrival, t.VirtualDeadline, boost, pred)
	}
	return nil
}

// printMetrics renders one Metrics block with its bounds; rel > 0 adds a
// feasibility verdict for that relative end-to-end deadline.
func printMetrics(m analysis.Metrics, rel simtime.Duration, procs int) {
	fmt.Printf("volume %v   critical path %v   vertices %d   depth %d   width %d\n",
		m.Volume, m.Critical, m.Vertices, m.Depth, m.Width)
	fmt.Printf("response lower bound (any schedule)  %v\n", m.ResponseLower(1))
	fmt.Printf("isolated upper bound (idle system)   %v\n", m.IsolatedUpper(1))
	fmt.Printf("graham makespan bound (m=%d)         %v\n", procs, m.GrahamUpper(procs))
	if rel > 0 {
		verdict := "infeasible under every schedule"
		if m.Feasible(rel, 1) {
			verdict = "not excluded by the lower bound"
		}
		fmt.Printf("relative deadline %v: %s\n", rel, verdict)
	}
}

// printCondAnalysis enumerates the conditional DAG's realizations and
// prints per-realization metrics plus the probability-weighted bounds.
func printCondAnalysis(cd *task.CondDag, rel simtime.Duration, procs int) error {
	s, err := analysis.SummarizeCond(cd, 0)
	if err != nil {
		return err
	}
	fmt.Printf("cond dag  %s\n", cd)
	fmt.Printf("branch points %d   realizations %d\n\n", cd.CondCount(), len(s.Realizations))
	fmt.Printf("%-6s %10s %10s %12s %14s\n",
		"prob", "volume", "critical", "lower bound", fmt.Sprintf("graham(m=%d)", procs))
	for _, r := range s.Realizations {
		m := r.Metrics
		fmt.Printf("%-6.4g %10v %10v %12v %14v\n",
			r.Prob, m.Volume, m.Critical, m.ResponseLower(1), m.GrahamUpper(procs))
	}
	fmt.Printf("\nE[volume] %.4g   E[critical] %.4g   E[response] >= %v\n",
		s.ExpVolume, s.ExpCritical, s.ExpResponseLower(1))
	fmt.Printf("critical path range [%v, %v]   max volume %v\n",
		s.MinCritical, s.MaxCritical, s.MaxVolume)
	if rel > 0 {
		fmt.Printf("relative deadline %v: miss ratio >= %.4g under every schedule\n",
			rel, s.MissLowerBound(rel, 1))
	}
	return nil
}

func printTree(t *task.Task, depth int) {
	name := t.Name
	if name == "" {
		name = "(" + t.Kind.String() + ")"
	}
	indent := strings.Repeat("  ", depth)
	nodeCol := "-"
	if t.IsSimple() {
		nodeCol = fmt.Sprintf("%d", t.Node)
	}
	boost := ""
	if t.PriorityBoost {
		boost = "GF"
	}
	fmt.Printf("%-24s %-9s %8s %10v %10v %6s\n",
		indent+name, t.Kind, nodeCol, t.Arrival, t.VirtualDeadline, boost)
	for _, c := range t.Children {
		printTree(c, depth+1)
	}
}
