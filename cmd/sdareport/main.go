// Command sdareport re-measures the paper's quantitative anchors and
// qualitative claims and emits a markdown reproduction report with
// PASS/FAIL verdicts.
//
// Example:
//
//	sdareport                      # default fidelity (a few minutes)
//	sdareport -quick               # smoke run (verdicts unreliable)
//	sdareport -duration 1000000    # paper-scale fidelity
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/exp"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdareport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdareport", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "low-fidelity smoke run (verdicts unreliable)")
		duration = fs.Float64("duration", 0, "override simulated time per replication")
		reps     = fs.Int("reps", 0, "override replications")
		seed     = fs.Uint64("seed", 0, "override master seed")
		blame    = fs.Bool("blame", false, "append a miss-cause attribution section (UD vs DIV-1 baseline)")
		oracle   = fs.Bool("oracle", false, "append an analytic response-time oracle audit (UD vs DIV-1 baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *duration > 0 {
		opts.Duration = simtime.Duration(*duration)
	}
	if *reps > 0 {
		opts.Replications = *reps
	}
	if *seed > 0 {
		opts.Seed = *seed
	}

	res, err := report.Check(opts)
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Markdown(res, opts))
	if *blame {
		cells, err := report.BlameCheck(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, report.BlameMarkdown(cells))
	}
	oraclePassed := true
	if *oracle {
		cells, err := report.OracleCheck(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, report.OracleMarkdown(cells))
		oraclePassed = report.OraclePassed(cells)
	}
	if (!res.Passed() || !oraclePassed) && !*quick {
		os.Exit(2)
	}
	return nil
}
