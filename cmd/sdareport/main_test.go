package main

import (
	"io"
	"strings"
	"testing"
)

func TestReportQuickRuns(t *testing.T) {
	if err := run([]string{"-quick", "-duration", "800", "-reps", "1", "-seed", "5"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestReportRendersMarkdown(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-quick", "-duration", "800", "-reps", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Reproduction report", "Quantitative anchors", "Qualitative claims"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportOracleSection(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-quick", "-duration", "800", "-reps", "1", "-oracle"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## Analytic oracle audit", "| UD |", "| DIV-1 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Quick-fidelity anchors may FAIL; the oracle section itself must not.
	_, section, _ := strings.Cut(out, "## Analytic oracle audit")
	if strings.Contains(section, "FAIL") {
		t.Errorf("oracle audit failed:\n%s", section)
	}
}
