// Command sdabench records and compares benchmark-trajectory snapshots.
//
// A snapshot (BENCH_<n>.json at the repository root) captures ns/op,
// B/op, allocs/op and custom metrics (e.g. events/op) for the kernel and
// simulator benchmarks, so performance changes are measured and guarded
// instead of guessed. The trajectory is the committed sequence BENCH_1,
// BENCH_2, ...: each perf-relevant change appends one snapshot and the
// comparison mode fails the build when a benchmark regresses by more than
// a threshold against the latest committed snapshot. Two thresholds
// apply: -max-regress gates ns/op (skippable with -report-only, since
// wall-clock timings are noisy on shared runners) and -max-alloc-regress
// gates allocs/op, which is deterministic and therefore enforced even
// under -report-only.
//
// Examples:
//
//	sdabench                          # run benchmarks, print snapshot JSON
//	sdabench -record                  # ... and write BENCH_<n+1>.json
//	sdabench -compare                 # ... and diff against latest BENCH_*.json
//	sdabench -compare -report-only    # diff; only allocs/op can fail (CI smoke job)
//	sdabench -input raw.txt -out s.json   # parse saved `go test -bench` output
//
// Equivalent make targets: `make bench-record`, `make bench-compare`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the benchmarks that guard the hot paths: the DES
// kernel (event churn, batch bursts), the node queue, end-to-end
// simulation throughput, and the strategy/parse/plan micro-benchmarks.
// The per-figure experiment benchmarks are excluded to keep the smoke run
// short; pass -bench '.' for everything.
const defaultBench = "BenchmarkEngineEventChurn|BenchmarkNodeQueueChurn|BenchmarkBurstArrival|BenchmarkSimulation|BenchmarkStrategyAssignment|BenchmarkEQFAssignment|BenchmarkTaskParse|BenchmarkPlan"

// Measurement is one benchmark's recorded metrics, keyed the way `go test
// -bench` prints them ("ns/op", "B/op", "allocs/op", "events/op", ...).
type Measurement struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the persisted form of one benchmark run.
type Snapshot struct {
	Recorded   string                 `json:"recorded"`
	GoVersion  string                 `json:"go_version"`
	Bench      string                 `json:"bench"`
	Benchtime  string                 `json:"benchtime"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdabench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdabench", flag.ContinueOnError)
	var (
		bench           = fs.String("bench", defaultBench, "benchmark regex passed to `go test -bench`")
		benchtime       = fs.String("benchtime", "100ms", "per-benchmark time passed to `go test -benchtime`")
		dir             = fs.String("dir", ".", "directory holding BENCH_*.json snapshots (the package to benchmark)")
		input           = fs.String("input", "", "parse raw `go test -bench` output from this file instead of running benchmarks")
		record          = fs.Bool("record", false, "write the snapshot as BENCH_<n+1>.json in -dir")
		outPath         = fs.String("out", "", "write the snapshot to this explicit path")
		compare         = fs.Bool("compare", false, "compare against the latest BENCH_*.json in -dir")
		maxRegress      = fs.Float64("max-regress", 25, "fail -compare when ns/op regresses by more than this percentage")
		maxAllocRegress = fs.Float64("max-alloc-regress", 10, "fail -compare when allocs/op regresses by more than this percentage (enforced even with -report-only)")
		reportOnly      = fs.Bool("report-only", false, "with -compare: report ns/op regressions but exit 0 (allocs/op regressions still fail)")
		quiet           = fs.Bool("q", false, "suppress the snapshot JSON on stdout")

		cpuprofile = fs.String("cpuprofile", "", "write the benchmark run's CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write the benchmark run's heap profile to this file")
		exectrace  = fs.String("exectrace", "", "write the benchmark run's execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var raw []byte
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			return err
		}
		raw = b
	} else {
		prof, err := profileArgs(*cpuprofile, *memprofile, *exectrace)
		if err != nil {
			return err
		}
		b, err := runBenchmarks(*dir, *bench, *benchtime, prof)
		if err != nil {
			return err
		}
		raw = b
	}
	snap := Snapshot{
		Recorded:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Benchmarks: parseBench(string(raw)),
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results parsed (regex %q)", *bench)
	}

	// Compare before recording, so a new snapshot never diffs against
	// itself.
	var regressions, allocRegressions []string
	if *compare {
		prev, prevPath, err := latestSnapshot(*dir)
		if err != nil {
			return err
		}
		if prev == nil {
			fmt.Fprintf(out, "compare: no BENCH_*.json snapshot in %s yet; nothing to compare\n", *dir)
		} else {
			regressions, allocRegressions = compareSnapshots(out, prev, &snap, prevPath, *maxRegress, *maxAllocRegress)
		}
	}

	if !*quiet {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return err
		}
	}
	if *outPath != "" {
		if err := writeSnapshot(*outPath, &snap); err != nil {
			return err
		}
	}
	if *record {
		path, err := nextSnapshotPath(*dir)
		if err != nil {
			return err
		}
		if err := writeSnapshot(path, &snap); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %s\n", path)
	}

	// The allocs/op gate holds even under -report-only: allocation counts
	// are deterministic, so a jump is a real regression, not timing noise.
	if len(allocRegressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed allocs/op beyond %.0f%%: %s",
			len(allocRegressions), *maxAllocRegress, strings.Join(allocRegressions, ", "))
	}
	if len(regressions) > 0 && !*reportOnly {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressions), *maxRegress, strings.Join(regressions, ", "))
	}
	return nil
}

// profileArgs turns the profiling flags into `go test` arguments. The go
// tool natively profiles benchmark runs (-cpuprofile and friends); paths
// are made absolute because the child process runs with its own working
// directory (-dir).
func profileArgs(cpu, mem, trace string) ([]string, error) {
	var args []string
	for _, p := range []struct{ flag, path string }{
		{"-cpuprofile", cpu},
		{"-memprofile", mem},
		{"-trace", trace},
	} {
		if p.path == "" {
			continue
		}
		abs, err := filepath.Abs(p.path)
		if err != nil {
			return nil, err
		}
		args = append(args, p.flag, abs)
	}
	return args, nil
}

// runBenchmarks shells out to the go tool; the benchmarks live in the
// root package of the repository.
func runBenchmarks(dir, bench, benchtime string, extra []string) ([]byte, error) {
	args := []string{"test", "-run", "^$",
		"-bench", bench, "-benchmem", "-benchtime", benchtime}
	args = append(args, extra...)
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	return out, nil
}

// benchLine matches one result line, e.g.
//
//	BenchmarkEngineEventChurn-8   1203421   318.5 ns/op   48 B/op   1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procsSuffix is a candidate GOMAXPROCS suffix on a benchmark name.
var procsSuffix = regexp.MustCompile(`-(\d+)$`)

// parseBench extracts measurements from `go test -bench` output. Metric
// values come in "<value> <unit>" pairs after the iteration count.
//
// The go tool appends "-<GOMAXPROCS>" to every name (absent when
// GOMAXPROCS=1). That suffix is stripped so snapshots from machines with
// different core counts compare by benchmark identity — but only the
// suffix shared by the majority of result lines is treated as the
// GOMAXPROCS tag, so a genuine name ending in "-<n>" (e.g. the DIV-1
// strategy sub-benchmark) survives intact.
func parseBench(output string) map[string]Measurement {
	type row struct {
		name    string
		iters   int64
		metrics map[string]float64
	}
	var rows []row
	suffixCount := make(map[string]int)
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		rows = append(rows, row{name: m[1], iters: iters, metrics: metrics})
		if s := procsSuffix.FindString(m[1]); s != "" {
			suffixCount[s]++
		}
	}
	procs := ""
	for s, c := range suffixCount {
		if 2*c > len(rows) {
			procs = s
		}
	}
	res := make(map[string]Measurement, len(rows))
	for _, r := range rows {
		name := r.name
		if procs != "" {
			name = strings.TrimSuffix(name, procs)
		}
		res[name] = Measurement{Iterations: r.iters, Metrics: r.metrics}
	}
	return res
}

// snapshotPattern matches committed trajectory files.
var snapshotPattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestSnapshot loads the highest-numbered BENCH_<n>.json in dir, or
// (nil, "", nil) when the trajectory is still empty.
func latestSnapshot(dir string) (*Snapshot, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := snapshotPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err == nil && n > bestN {
			bestN, best = n, e.Name()
		}
	}
	if bestN < 0 {
		return nil, "", nil
	}
	path := filepath.Join(dir, best)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, "", fmt.Errorf("parse %s: %w", path, err)
	}
	return &s, path, nil
}

// nextSnapshotPath returns the first unused BENCH_<n>.json path in dir.
func nextSnapshotPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	maxN := 0
	for _, e := range entries {
		m := snapshotPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > maxN {
			maxN = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", maxN+1)), nil
}

func writeSnapshot(path string, s *Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// compareSnapshots prints a per-benchmark delta table and returns the
// names whose ns/op regressed beyond maxRegress percent and the names
// whose allocs/op regressed beyond maxAllocRegress percent. The alloc
// gate allows one allocation of absolute slack so benchmarks at or near
// zero allocs/op do not flap on amortized setup costs. Benchmarks present
// in only one snapshot are reported but never fail the run.
func compareSnapshots(out io.Writer, prev, cur *Snapshot, prevPath string, maxRegress, maxAllocRegress float64) (regressions, allocRegressions []string) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "compare against %s (recorded %s):\n", prevPath, prev.Recorded)
	for _, name := range names {
		curM := cur.Benchmarks[name]
		prevM, ok := prev.Benchmarks[name]
		if !ok {
			fmt.Fprintf(out, "  %-40s new benchmark, no baseline\n", name)
			continue
		}
		oldNs, newNs := prevM.Metrics["ns/op"], curM.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			continue
		}
		delta := (newNs/oldNs - 1) * 100
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSED"
			regressions = append(regressions, name)
		}
		line := fmt.Sprintf("  %-40s %12.1f -> %12.1f ns/op  %+7.1f%%  %s",
			name, oldNs, newNs, delta, status)
		oa, oaOK := prevM.Metrics["allocs/op"]
		na, naOK := curM.Metrics["allocs/op"]
		if oaOK && naOK && na > oa*(1+maxAllocRegress/100)+1 {
			allocRegressions = append(allocRegressions, name)
			line += fmt.Sprintf("  ALLOCS REGRESSED (allocs/op %g -> %g)", oa, na)
		} else if oa != na {
			line += fmt.Sprintf("  (allocs/op %g -> %g)", oa, na)
		}
		fmt.Fprintln(out, line)
	}
	for name := range prev.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(out, "  %-40s dropped (present in baseline only)\n", name)
		}
	}
	return regressions, allocRegressions
}
