package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleOutput mirrors a GOMAXPROCS=1 run: no -<procs> suffixes, and a
// sub-benchmark whose name genuinely ends in "-1".
const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulationBaseline 	      24	  15142334 ns/op	     27227 events/op	 6612602 B/op	  126824 allocs/op
BenchmarkEngineEventChurn   	 1203421	       318.5 ns/op	      48 B/op	       1 allocs/op
BenchmarkStrategyAssignment/DIV-1      	96069963	         4.245 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	4.449s
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	base, ok := got["BenchmarkSimulationBaseline"]
	if !ok {
		t.Fatal("missing BenchmarkSimulationBaseline")
	}
	if base.Iterations != 24 {
		t.Errorf("iterations = %d, want 24", base.Iterations)
	}
	if base.Metrics["ns/op"] != 15142334 {
		t.Errorf("ns/op = %v", base.Metrics["ns/op"])
	}
	if base.Metrics["events/op"] != 27227 {
		t.Errorf("custom metric events/op = %v, want 27227", base.Metrics["events/op"])
	}
	if base.Metrics["allocs/op"] != 126824 {
		t.Errorf("allocs/op = %v", base.Metrics["allocs/op"])
	}
	// Without a majority GOMAXPROCS suffix, names — including ones that
	// genuinely end in "-<n>" — must survive untouched.
	if _, ok := got["BenchmarkStrategyAssignment/DIV-1"]; !ok {
		t.Errorf("sub-benchmark name mangled: %v", got)
	}
}

// suffixedOutput mirrors a GOMAXPROCS=8 run: every line carries -8, which
// must be stripped — but only that shared suffix, so DIV-1 keeps its -1.
const suffixedOutput = `
BenchmarkSimulationBaseline-8 	      24	  15142334 ns/op	     27227 events/op	 6612602 B/op	  126824 allocs/op
BenchmarkEngineEventChurn-8   	 1203421	       318.5 ns/op	      48 B/op	       1 allocs/op
BenchmarkStrategyAssignment/DIV-1-8    	96069963	         4.245 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchStripsProcsSuffix(t *testing.T) {
	got := parseBench(suffixedOutput)
	for _, want := range []string{
		"BenchmarkSimulationBaseline",
		"BenchmarkEngineEventChurn",
		"BenchmarkStrategyAssignment/DIV-1",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing %q after suffix stripping: %v", want, got)
		}
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := parseBench("PASS\nok repro 1.2s\nBenchmark 3 nonsense\n"); len(got) != 0 {
		t.Errorf("parsed %d benchmarks from noise, want 0", len(got))
	}
}

func writeTestSnapshot(t *testing.T, path string, benchmarks map[string]Measurement) {
	t.Helper()
	b, err := json.Marshal(Snapshot{Recorded: "test", Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotNumbering(t *testing.T) {
	dir := t.TempDir()
	path, err := nextSnapshotPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_1.json" {
		t.Errorf("first snapshot = %s, want BENCH_1.json", path)
	}
	writeTestSnapshot(t, filepath.Join(dir, "BENCH_1.json"), nil)
	writeTestSnapshot(t, filepath.Join(dir, "BENCH_7.json"),
		map[string]Measurement{"BenchmarkX": {Metrics: map[string]float64{"ns/op": 10}}})
	path, err = nextSnapshotPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_8.json" {
		t.Errorf("next snapshot = %s, want BENCH_8.json", path)
	}
	latest, latestPath, err := latestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latestPath) != "BENCH_7.json" {
		t.Errorf("latest = %s, want BENCH_7.json", latestPath)
	}
	if latest.Benchmarks["BenchmarkX"].Metrics["ns/op"] != 10 {
		t.Error("latest snapshot content not loaded")
	}
}

func TestLatestSnapshotEmpty(t *testing.T) {
	s, path, err := latestSnapshot(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s != nil || path != "" {
		t.Errorf("empty dir returned %v at %q", s, path)
	}
}

func TestCompareSnapshots(t *testing.T) {
	prev := &Snapshot{Benchmarks: map[string]Measurement{
		"BenchmarkFast":    {Metrics: map[string]float64{"ns/op": 100, "allocs/op": 1}},
		"BenchmarkSlow":    {Metrics: map[string]float64{"ns/op": 100}},
		"BenchmarkDropped": {Metrics: map[string]float64{"ns/op": 5}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Measurement{
		"BenchmarkFast": {Metrics: map[string]float64{"ns/op": 90, "allocs/op": 0}},
		"BenchmarkSlow": {Metrics: map[string]float64{"ns/op": 140}},
		"BenchmarkNew":  {Metrics: map[string]float64{"ns/op": 7}},
	}}
	var buf strings.Builder
	regressed, allocRegressed := compareSnapshots(&buf, prev, cur, "BENCH_1.json", 25, 10)
	if len(regressed) != 1 || regressed[0] != "BenchmarkSlow" {
		t.Errorf("regressions = %v, want [BenchmarkSlow]", regressed)
	}
	if len(allocRegressed) != 0 {
		t.Errorf("alloc regressions = %v, want none", allocRegressed)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "new benchmark", "dropped", "allocs/op 1 -> 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// A 40% threshold lets the slow benchmark pass.
	if regressed, _ := compareSnapshots(&strings.Builder{}, prev, cur, "x", 45, 10); len(regressed) != 0 {
		t.Errorf("regressions at 45%% threshold = %v, want none", regressed)
	}
}

func TestCompareSnapshotsAllocGate(t *testing.T) {
	prev := &Snapshot{Benchmarks: map[string]Measurement{
		"BenchmarkLeaky": {Metrics: map[string]float64{"ns/op": 100, "allocs/op": 1000}},
		"BenchmarkZero":  {Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0}},
		"BenchmarkNoMem": {Metrics: map[string]float64{"ns/op": 100}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Measurement{
		"BenchmarkLeaky": {Metrics: map[string]float64{"ns/op": 100, "allocs/op": 1200}},
		"BenchmarkZero":  {Metrics: map[string]float64{"ns/op": 100, "allocs/op": 1}},
		"BenchmarkNoMem": {Metrics: map[string]float64{"ns/op": 100}},
	}}
	var buf strings.Builder
	_, allocRegressed := compareSnapshots(&buf, prev, cur, "x", 25, 10)
	// 1000 -> 1200 is a 20% jump; 0 -> 1 sits inside the one-alloc grace;
	// a benchmark with no memory metrics is skipped.
	if len(allocRegressed) != 1 || allocRegressed[0] != "BenchmarkLeaky" {
		t.Fatalf("alloc regressions = %v, want [BenchmarkLeaky]", allocRegressed)
	}
	if !strings.Contains(buf.String(), "ALLOCS REGRESSED") {
		t.Errorf("report missing ALLOCS REGRESSED:\n%s", buf.String())
	}
	// 0 -> 2 exceeds the grace allocation.
	cur.Benchmarks["BenchmarkZero"] = Measurement{Metrics: map[string]float64{"ns/op": 100, "allocs/op": 2}}
	_, allocRegressed = compareSnapshots(&strings.Builder{}, prev, cur, "x", 25, 10)
	if len(allocRegressed) != 2 {
		t.Fatalf("alloc regressions = %v, want BenchmarkLeaky and BenchmarkZero", allocRegressed)
	}
}

// TestRunWithInputFixture drives the full flow (parse -> compare ->
// record) without shelling out to the go tool.
func TestRunWithInputFixture(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(inPath, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-input", inPath, "-dir", dir, "-record", "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_1.json")); err != nil {
		t.Fatalf("snapshot not recorded: %v", err)
	}

	// A second identical run compared against the first: no regressions.
	buf.Reset()
	if err := run([]string{"-input", inPath, "-dir", dir, "-compare", "-q"}, &buf); err != nil {
		t.Fatalf("identical run reported regression: %v\n%s", err, buf.String())
	}

	// A slowed-down run must fail ... unless report-only.
	slow := strings.ReplaceAll(sampleOutput, "318.5 ns/op", "9999.0 ns/op")
	slowPath := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", slowPath, "-dir", dir, "-compare", "-q"}, io.Discard); err == nil {
		t.Fatal("regressed run did not fail")
	}
	if err := run([]string{"-input", slowPath, "-dir", dir, "-compare", "-report-only", "-q"}, io.Discard); err != nil {
		t.Fatalf("report-only run failed: %v", err)
	}

	// An allocs/op regression must fail even under -report-only.
	leaky := strings.ReplaceAll(sampleOutput, "126824 allocs/op", "150000 allocs/op")
	leakyPath := filepath.Join(dir, "leaky.txt")
	if err := os.WriteFile(leakyPath, []byte(leaky), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-input", leakyPath, "-dir", dir, "-compare", "-report-only", "-q"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc-regressed report-only run: err = %v, want allocs/op failure", err)
	}
}
