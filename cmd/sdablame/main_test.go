package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
)

// fixture writes a small span log with one straggler miss and one hit.
func fixture(t *testing.T) string {
	t.Helper()
	f := func(v float64) *float64 { return &v }
	recs := []obs.Record{
		{Type: "span", Kind: "global", Task: "G1", Node: -1, ID: 1,
			Start: f(0), End: f(20), RealDL: f(12), Missed: true},
		{Type: "span", Kind: "subtask", Task: "G1.s1", Node: 1, ID: 2, Root: 1,
			Start: f(0), End: f(20), Exec: f(4), Pex: f(4)},
		{Type: "span", Kind: "subtask", Task: "G1.s2", Node: 2, ID: 3, Root: 1,
			Start: f(0), End: f(6), Exec: f(4), Pex: f(4)},
		{Type: "span", Kind: "global", Task: "G2", Node: -1, ID: 4,
			Start: f(0), End: f(8), RealDL: f(12)},
	}
	var b strings.Builder
	for _, r := range recs {
		if err := obs.WriteRecord(&b, r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func render(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return out.String()
}

func TestMarkdownReportIsDeterministic(t *testing.T) {
	path := fixture(t)
	r1 := render(t, path)
	r2 := render(t, path)
	if r1 != r2 {
		t.Fatalf("two renders of the same JSONL differ")
	}
	for _, want := range []string{
		"# Miss-cause attribution",
		"sibling-straggler",
		"## Cause mix",
		"G1.s1 @ node 1",
	} {
		if !strings.Contains(r1, want) {
			t.Errorf("report missing %q:\n%s", want, r1)
		}
	}
}

func TestJSONReportDecodesWithExactDecomposition(t *testing.T) {
	out := render(t, "-json", fixture(t))
	var rpt attrib.Report
	if err := json.Unmarshal([]byte(out), &rpt); err != nil {
		t.Fatalf("not a report: %v", err)
	}
	if rpt.MissedGlobals != 1 || rpt.Globals != 2 {
		t.Fatalf("counts: %+v", rpt)
	}
	m := rpt.Misses[0]
	if m.Cause == "" {
		t.Fatalf("miss without a primary cause: %+v", m)
	}
	if got := m.Wait + m.Overrun + m.SlackDeficit; got != m.Lateness {
		t.Fatalf("decomposition %g != lateness %g", got, m.Lateness)
	}
}

func TestOutputFileAndV1Input(t *testing.T) {
	// A v1 (unversioned) line must be accepted via the tolerant decoder.
	v1 := `{"type":"span","kind":"global","task":"G","node":2,"id":1,"start":0,"end":9,"vdl":5,"real_dl":5,"slack":2,"lateness":4,"missed":true}` + "\n"
	in := filepath.Join(t.TempDir(), "v1.jsonl")
	if err := os.WriteFile(in, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(t.TempDir(), "blame.md")
	if got := render(t, "-o", outPath, in); got != "" {
		t.Fatalf("-o still wrote to stdout: %q", got)
	}
	body, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "schema 1") {
		t.Fatalf("v1 report missing schema note:\n%s", body)
	}
}

func TestBadInputs(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Fatal("no-arg run accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty input accepted")
	}
}
