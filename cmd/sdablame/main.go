// Command sdablame attributes missed deadlines offline: it reads a span
// JSONL log (written by the -obs exports of sdasim/sdaexp/sdascen or by
// cmd/sdaobs), reconstructs each missed global task's realized critical
// path, decomposes its lateness into wait / execution-overrun /
// slack-deficit components, classifies a primary cause, and renders a
// markdown (default) or JSON report.
//
// The analysis is deterministic: the same JSONL always produces
// byte-identical reports. Both the current schema and the original
// unversioned (v1) span format are accepted.
//
// Usage:
//
//	sdablame obs-out/spans.jsonl            # markdown report to stdout
//	sdablame -json obs-out/spans.jsonl      # full report as JSON
//	sdablame -o blame.md obs-out/spans.jsonl
//	sdasim -obs d ... && sdablame d/spans.jsonl
//	cat spans.jsonl | sdablame -            # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdablame:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sdablame", flag.ContinueOnError)
	var (
		asJSON = fs.Bool("json", false, "emit the full report as JSON instead of markdown")
		outTo  = fs.String("o", "", "write the report to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sdablame [-json] [-o file] <spans.jsonl | ->")
	}

	var in io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	recs, err := obs.ReadRecords(in)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no records in input")
	}

	rpt := attrib.Analyze(recs)
	var body []byte
	if *asJSON {
		body, err = rpt.JSON()
		if err != nil {
			return err
		}
	} else {
		body = []byte(rpt.Markdown())
	}

	if *outTo != "" {
		return os.WriteFile(*outTo, body, 0o644)
	}
	_, err = stdout.Write(body)
	return err
}
