// Live pipeline: the library beyond simulation. The runtime layer applies
// the paper's deadline-assignment strategies to *real* concurrent Go code:
// worker nodes are goroutines with EDF queues, deadlines are wall-clock
// instants, and the orchestrator plays the process manager.
//
// The example mimics the stock-trading pipeline at millisecond scale and
// submits a burst of trades alongside background (local) work, showing how
// EQF-DIV1 budgets each trade's end-to-end deadline across its stages.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	sda "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// busy simulates cpu-ish work of roughly duration d that honours
// cancellation.
func busy(d time.Duration) sda.Func {
	return func(ctx context.Context) error {
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func run() error {
	o := sda.NewOrchestrator(sda.WithStrategies(sda.EQF(), sda.Div(1)))
	defer o.Close()
	for _, name := range []string{"feed1", "feed2", "db", "rules", "gateway"} {
		if _, err := o.AddNode(name); err != nil {
			return err
		}
	}

	// One trading task: gather quotes from two feeds in parallel, analyse
	// against the database, then execute the order.
	trade := func(id int) *sda.Work {
		ms := time.Millisecond
		return sda.Sequence(fmt.Sprintf("trade-%d", id),
			sda.Group("gather",
				sda.Step("quotes-a", "feed1", 8*ms, busy(time.Duration(4+rand.Intn(8))*ms)),
				sda.Step("quotes-b", "feed2", 8*ms, busy(time.Duration(4+rand.Intn(8))*ms)),
			),
			sda.Step("analyse", "rules", 10*ms, busy(time.Duration(6+rand.Intn(8))*ms)),
			sda.Step("book", "db", 6*ms, busy(time.Duration(3+rand.Intn(6))*ms)),
			sda.Step("execute", "gateway", 5*ms, busy(time.Duration(2+rand.Intn(5))*ms)),
		)
	}

	// Submit a burst of 12 trades, each with a 120ms end-to-end deadline.
	var handles []*sda.Handle
	start := time.Now()
	for i := 0; i < 12; i++ {
		h, err := o.Go(context.Background(), trade(i), time.Now().Add(120*time.Millisecond))
		if err != nil {
			return err
		}
		handles = append(handles, h)
	}

	hits := 0
	for i, h := range handles {
		rep, err := h.Wait(context.Background())
		if err != nil {
			return err
		}
		status := "hit "
		if rep.Missed {
			status = "MISS"
		} else {
			hits++
		}
		fmt.Printf("trade-%-2d %s  finished %6.1fms after submit (deadline 120ms)\n",
			i, status, rep.Finish.Sub(start).Seconds()*1000)
	}
	fmt.Printf("\n%d/%d trades met their end-to-end deadline.\n", hits, len(handles))

	// Inspect one trade's budget to see EQF at work.
	h, err := o.Go(context.Background(), trade(99), time.Now().Add(120*time.Millisecond))
	if err != nil {
		return err
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("\nEQF-DIV1 virtual deadlines for one trade (ms after its release):")
	rel := rep.Steps[0].Release
	for _, s := range rep.Steps {
		fmt.Printf("  %-9s on %-8s virtual %6.1fms\n",
			s.Name, s.Node, s.Virtual.Sub(rel).Seconds()*1000)
	}
	return nil
}
