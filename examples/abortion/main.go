// Abortion policies: the Section 7.3 experiment. In firm real-time
// systems tardy work is worthless, so the system may abort it — either
// the process manager withdraws a task when its *real* deadline passes, or
// each local scheduler discards subtasks whose *virtual* deadline expired.
//
// The two mechanisms interact very differently with deadline assignment:
// process-manager abortion helps every strategy (no resources wasted on
// hopeless work), while local-scheduler abortion punishes DIV-x — the
// deliberately early virtual deadlines now trigger spurious aborts that
// burn the task's slack in failed trials.
package main

import (
	"fmt"
	"log"

	sda "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	modes := []struct {
		name  string
		abort sda.AbortMode
	}{
		{"no abortion", sda.AbortNone},
		{"process-manager abortion", sda.AbortProcessManager},
		{"local-scheduler abortion", sda.AbortLocalScheduler},
	}
	strategies := []sda.PSP{sda.UD(), sda.Div(1), sda.Div(4)}

	for _, m := range modes {
		fmt.Printf("%s (load 0.6):\n", m.name)
		fmt.Printf("  %-6s %12s %12s\n", "PSP", "MD_local", "MD_global")
		for _, psp := range strategies {
			cfg := sda.Default()
			cfg.Spec.Load = 0.6
			cfg.PSP = psp
			cfg.Abort = m.abort
			cfg.Duration = 40000
			cfg.Replications = 2
			res, err := sda.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("  %-6s %12.4f %12.4f\n",
				psp.Name(), res.MDLocal.Mean, res.MDGlobal.Mean)
		}
		fmt.Println()
	}
	fmt.Println("process-manager abortion lowers every miss rate. local aborts also")
	fmt.Println("reclaim capacity, but they kill DIV-x subtasks that still had time —")
	fmt.Println("global misses stay well above the process-manager level, and GF")
	fmt.Println("(whose virtual deadlines are always in the past) is inapplicable.")
	return nil
}
