// Quickstart: build a parallel global task, inspect the deadline
// assignment the strategies produce, then run the paper's baseline
// simulation and compare UD against DIV-1.
package main

import (
	"fmt"
	"log"

	sda "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- 1. Deadline assignment on a single task -----------------------
	// The paper's Figure 4 example: T = [T1 || T2 || T3] with deadline 9.
	t, err := sda.Parse("[T1@0:4 || T2@1:4 || T3@2:4]")
	if err != nil {
		return err
	}
	fmt.Println("task:", t)
	for _, psp := range []sda.PSP{sda.UD(), sda.Div(1), sda.Div(2), sda.GF()} {
		plan := sda.MustParse("[T1@0:4 || T2@1:4 || T3@2:4]")
		if err := sda.Plan(plan, 0, 9, sda.SerialUD(), psp); err != nil {
			return err
		}
		leaf := plan.Children[0]
		boost := ""
		if leaf.PriorityBoost {
			boost = " (globals-first band)"
		}
		fmt.Printf("  %-6s -> every subtask gets virtual deadline %v%s\n",
			psp.Name(), leaf.VirtualDeadline, boost)
	}

	// --- 2. Simulate the baseline (Table 1) ----------------------------
	// Six nodes, load 0.5, 75% local work, global tasks of four parallel
	// subtasks. How many deadlines does each strategy miss?
	fmt.Println("\nbaseline simulation (this takes a few seconds):")
	fmt.Printf("  %-6s %12s %12s %12s\n", "PSP", "MD_local", "MD_global", "missed work")
	for _, psp := range []sda.PSP{sda.UD(), sda.Div(1), sda.GF()} {
		cfg := sda.Default()
		cfg.PSP = psp
		cfg.Duration = 50000
		cfg.Replications = 2
		res, err := sda.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-6s %12.4f %12.4f %12.4f\n",
			psp.Name(), res.MDLocal.Mean, res.MDGlobal.Mean, res.MissedWork.Mean)
	}
	fmt.Println("\nUD lets one tardy subtask doom the whole global task;")
	fmt.Println("DIV-1 and GF promote subtasks and cut the global miss rate sharply.")
	return nil
}
