// Stock trading: the paper's motivating application (Sections 1 and 8).
//
// A program-trading task runs five serial stages — initialization,
// distributed information gathering (4 parallel sources), analysis, action
// implementation (4 parallel actions), conclusion — and must finish within
// an end-to-end deadline. This example reproduces the Section 8 experiment:
// the four SSP x PSP combinations of Table 2 on that task graph.
package main

import (
	"fmt"
	"log"

	sda "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The Figure 14 task graph, written in the paper's bracket notation.
	pipeline := sda.MustParse(
		"[init@0:1 [src1@1:1||src2@2:1||src3@3:1||src4@4:1] analyze@5:1" +
			" [act1@1:1||act2@2:1||act3@3:1||act4@4:1] conclude@0:1]")
	fmt.Println("trading pipeline:", pipeline)
	fmt.Printf("stages %d, subtasks %d, critical path %v\n\n",
		len(pipeline.Children), pipeline.CountSimple(), pipeline.CriticalPath())

	// Offline: how does EQF-DIV1 budget a 25-unit deadline?
	if err := sda.Plan(pipeline, 0, 25, sda.EQF(), sda.Div(1)); err != nil {
		return err
	}
	fmt.Println("EQF-DIV1 stage budgets for deadline 25:")
	for i, stage := range pipeline.Children {
		fmt.Printf("  stage %d (%-8s) release %6.2f  deadline %6.2f\n",
			i+1, stage.Kind, float64(stage.Arrival), float64(stage.VirtualDeadline))
	}

	// Online: the Section 8 simulation. Global slack is the local range
	// scaled by the 5 stages: [6.25, 25].
	combos := []struct {
		name string
		ssp  sda.SSP
		psp  sda.PSP
	}{
		{"UD-UD", sda.SerialUD(), sda.UD()},
		{"UD-DIV1", sda.SerialUD(), sda.Div(1)},
		{"EQF-UD", sda.EQF(), sda.UD()},
		{"EQF-DIV1", sda.EQF(), sda.Div(1)},
	}
	fmt.Println("\nsimulating the Table 2 strategy combinations at load 0.6:")
	fmt.Printf("  %-9s %12s %12s\n", "SDA", "MD_local", "MD_global")
	for _, c := range combos {
		cfg := sda.Default()
		cfg.Spec = sda.Baseline(sda.SerialParallel{Stages: 5, Fanout: 4})
		cfg.Spec.Load = 0.6
		cfg.Spec.GlobalSlackMin = 6.25
		cfg.Spec.GlobalSlackMax = 25
		cfg.SSP = c.ssp
		cfg.PSP = c.psp
		cfg.Duration = 40000
		cfg.Replications = 2
		res, err := sda.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-9s %12.4f %12.4f\n", c.name, res.MDLocal.Mean, res.MDGlobal.Mean)
	}
	fmt.Println("\nthe SSP and PSP fixes are additive: EQF-DIV1 keeps global")
	fmt.Println("misses near local misses where UD-UD collapses.")
	return nil
}
