// Heterogeneous globals: the Section 7.4 experiment. Global tasks have
// between 2 and 6 parallel subtasks, producing six task classes (locals
// plus five global sizes). Under UD the big tasks are starved — "they miss
// simply because they are big" — while DIV-1 equalises the classes and GF
// pushes global misses below locals.
package main

import (
	"fmt"
	"log"

	sda "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	strategies := []sda.PSP{sda.UD(), sda.Div(1), sda.GF()}
	type column struct {
		name    string
		local   float64
		byClass map[int]float64
	}
	var cols []column
	for _, psp := range strategies {
		cfg := sda.Default()
		cfg.Spec.Factory = sda.UniformParallel{Min: 2, Max: 6}
		cfg.PSP = psp
		cfg.Duration = 60000
		cfg.Replications = 2
		res, err := sda.Run(cfg)
		if err != nil {
			return err
		}
		byClass := make(map[int]float64, len(res.MDGlobalBy))
		for n, iv := range res.MDGlobalBy {
			byClass[n] = iv.Mean
		}
		cols = append(cols, column{psp.Name(), res.MDLocal.Mean, byClass})
	}

	fmt.Println("fraction of missed deadlines per task class (load 0.5):")
	fmt.Printf("  %-12s", "class")
	for _, c := range cols {
		fmt.Printf(" %10s", c.name)
	}
	fmt.Println()
	fmt.Printf("  %-12s", "local")
	for _, c := range cols {
		fmt.Printf(" %10.4f", c.local)
	}
	fmt.Println()
	for n := 2; n <= 6; n++ {
		fmt.Printf("  global n=%-3d", n)
		for _, c := range cols {
			fmt.Printf(" %10.4f", c.byClass[n])
		}
		fmt.Println()
	}

	fmt.Println("\nunder UD the miss rate climbs with task size; DIV-x scales the")
	fmt.Println("priority boost with n, so all global classes level out.")
	return nil
}
