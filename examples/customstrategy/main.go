// Custom strategy: the library's strategy interfaces are open — users can
// plug their own deadline-assignment heuristics into the simulator (and
// the live runtime) alongside the paper's UD/DIV-x/GF.
//
// This example implements a "load-capped DIV" strategy: DIV-x's priority
// promotion, but never pushing the virtual deadline earlier than a fixed
// guard interval before the real deadline. It then benchmarks the custom
// strategy against the paper's strategies on the baseline workload.
package main

import (
	"fmt"
	"log"

	sda "repro"
)

// cappedDiv promotes parallel subtasks like DIV-x but refuses to assign a
// virtual deadline earlier than (real deadline - cap), bounding how much
// urgency a single global task can claim.
type cappedDiv struct {
	x   float64
	cap sda.Duration
}

var _ sda.PSP = cappedDiv{}

// AssignParallel implements sda.PSP.
func (s cappedDiv) AssignParallel(ar sda.Time, deadline sda.Time, n int) sda.Assignment {
	if n < 1 {
		n = 1
	}
	allowance := deadline.Sub(ar)
	if allowance < 0 {
		return sda.Assignment{Virtual: deadline}
	}
	v := ar.Add(allowance.Scale(1 / (float64(n) * s.x)))
	if floor := deadline.Add(-s.cap); v.Before(floor) {
		v = floor
	}
	return sda.Assignment{Virtual: v.Min(deadline)}
}

// Name implements sda.PSP.
func (s cappedDiv) Name() string {
	return fmt.Sprintf("CAPDIV-%g/%v", s.x, s.cap)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	strategies := []sda.PSP{
		sda.UD(),
		sda.Div(1),
		cappedDiv{x: 1, cap: 4},
		cappedDiv{x: 1, cap: 8},
		sda.GF(),
	}
	fmt.Println("custom strategy vs the paper's strategies (baseline, load 0.6):")
	fmt.Printf("  %-14s %12s %12s\n", "PSP", "MD_local", "MD_global")
	for _, psp := range strategies {
		cfg := sda.Default()
		cfg.Spec.Load = 0.6
		cfg.PSP = psp
		cfg.Duration = 40000
		cfg.Replications = 2
		res, err := sda.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s %12.4f %12.4f\n",
			psp.Name(), res.MDLocal.Mean, res.MDGlobal.Mean)
	}
	fmt.Println("\nanything implementing the PSP (or SSP) interface slots into the")
	fmt.Println("simulator, the experiment harness and the live orchestrator alike.")
	return nil
}
