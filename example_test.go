package sda_test

import (
	"fmt"

	sda "repro"
)

// ExampleParse shows the paper's bracket notation: serial stages
// space-separated, parallel subtasks separated by ||, leaves annotated
// with @node and :execution time.
func ExampleParse() {
	t, err := sda.Parse("[gather@0:2 [a@1:1 || b@2:3] report@0:1]")
	if err != nil {
		panic(err)
	}
	fmt.Println("subtasks:", t.CountSimple())
	fmt.Println("critical path:", t.CriticalPath())
	fmt.Println("total work:", t.TotalWork())
	// Output:
	// subtasks: 4
	// critical path: 6
	// total work: 7
}

// ExamplePlan reproduces the paper's Figure 4: three parallel subtasks
// with end-to-end deadline 9 under UD, DIV-1 and DIV-2.
func ExamplePlan() {
	for _, psp := range []sda.PSP{sda.UD(), sda.Div(1), sda.Div(2)} {
		t := sda.MustParse("[T1@0:4 || T2@1:4 || T3@2:4]")
		if err := sda.Plan(t, 0, 9, sda.SerialUD(), psp); err != nil {
			panic(err)
		}
		fmt.Printf("%-5s -> dl(Ti) = %v\n", psp.Name(), t.Children[0].VirtualDeadline)
	}
	// Output:
	// UD    -> dl(Ti) = 9
	// DIV-1 -> dl(Ti) = 3
	// DIV-2 -> dl(Ti) = 1.5
}

// ExampleEQF shows Equal Flexibility dividing a serial task's slack in
// proportion to predicted stage lengths (the paper's introduction
// example: reserve half the horizon for the second stage).
func ExampleEQF() {
	t := sda.MustParse("[stage1@0:5 stage2@1:5]")
	if err := sda.Plan(t, 0, 10, sda.EQF(), sda.UD()); err != nil {
		panic(err)
	}
	for i, stage := range t.Children {
		fmt.Printf("stage %d: release %v, deadline %v\n",
			i+1, stage.Arrival, stage.VirtualDeadline)
	}
	// Output:
	// stage 1: release 0, deadline 5
	// stage 2: release 5, deadline 10
}

// ExampleParsePSP resolves strategies by name, as the CLI tools do.
func ExampleParsePSP() {
	psp, err := sda.ParsePSP("DIV-2.5")
	if err != nil {
		panic(err)
	}
	a := psp.AssignParallel(0, 10, 4)
	fmt.Println(psp.Name(), "->", a.Virtual)
	// Output:
	// DIV-2.5 -> 1
}
