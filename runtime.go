package sda

import (
	"context"
	"time"

	"repro/internal/core"
)

// The runtime layer executes serial-parallel graphs of real Go functions
// on worker nodes with wall-clock deadlines, decomposed by the same SDA
// strategies the simulator studies. See Orchestrator.

// Orchestrator is the live process manager: it owns worker nodes, assigns
// virtual deadlines, enforces precedence and reports outcomes.
type Orchestrator = core.Orchestrator

// Work is a serial-parallel composition of runnable steps.
type Work = core.Work

// Func is the body of a step.
type Func = core.Func

// Handle tracks an in-flight live task.
type Handle = core.Handle

// Report is the outcome of a live task.
type Report = core.Report

// StepReport is the outcome of one step of a live task.
type StepReport = core.StepReport

// WorkerNode is a live single-worker processing component.
type WorkerNode = core.Node

// NewOrchestrator returns a live orchestrator; add nodes with AddNode,
// then submit Work with Go.
func NewOrchestrator(opts ...OrchestratorOption) *Orchestrator {
	return core.NewOrchestrator(opts...)
}

// OrchestratorOption configures NewOrchestrator.
type OrchestratorOption = core.Option

// WithStrategies selects the SSP and PSP strategies used to decompose
// live deadlines (default UD-UD).
func WithStrategies(ssp SSP, psp PSP) OrchestratorOption {
	return core.WithStrategies(ssp, psp)
}

// WithDeadlineAbort withdraws a live task's queued steps when its real
// deadline passes (the paper's process-manager abortion, live).
func WithDeadlineAbort() OrchestratorOption {
	return core.WithDeadlineAbort()
}

// Step returns a leaf work item: fn runs at the named node with predicted
// duration pex.
func Step(name, node string, pex time.Duration, fn Func) *Work {
	return core.Step(name, node, pex, fn)
}

// Sequence composes work serially.
func Sequence(name string, children ...*Work) *Work {
	return core.Sequence(name, children...)
}

// Group composes work in parallel.
func Group(name string, children ...*Work) *Work {
	return core.Group(name, children...)
}

// compile-time check that the facade signatures stay wired.
var _ = func() *Handle {
	o := NewOrchestrator()
	defer o.Close()
	h, _ := o.Go(context.Background(), nil, time.Time{})
	return h
}
