GO ?= go

.PHONY: check vet build test race scenarios bless bench

# check runs exactly what CI runs.
check: vet build race scenarios

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# scenarios runs the fault-injection suite against the golden hashes.
scenarios:
	$(GO) run ./cmd/sdascen -v

# bless re-records the golden trace hashes after a deliberate behaviour
# change. Inspect and commit the golden.txt diff.
bless:
	$(GO) run ./cmd/sdascen -bless

bench:
	$(GO) test -bench=. -benchmem
