GO ?= go

.PHONY: check vet build test race scenarios bless bench bench-record bench-compare profile obs blame stress stress-smoke trace flight

# check runs exactly what CI runs.
check: vet build race scenarios

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# scenarios runs the fault-injection suite against the golden hashes.
scenarios:
	$(GO) run ./cmd/sdascen -v

# stress runs the full-size stress scenarios (10k/5k/1k-node fleets
# under seeded chaos) with per-replication metrics. No golden hashes:
# stress runs are judged by invariants, the oracle and the Assert bands.
stress:
	$(GO) run ./cmd/sdascen -v stress-fleet-10k stress-zone-5k stress-coldstart-1k

# stress-smoke is the CI determinism gate: run the 5k-node zone-failure
# scenario twice — sequentially and on 4 replication workers — and
# require the deterministic outcome summaries to be byte-identical.
stress-smoke:
	$(GO) run ./cmd/sdascen -stress-workers 1 -summary stress-smoke-a.txt stress-zone-5k
	$(GO) run ./cmd/sdascen -stress-workers 4 -summary stress-smoke-b.txt stress-zone-5k
	cmp stress-smoke-a.txt stress-smoke-b.txt
	@rm -f stress-smoke-a.txt stress-smoke-b.txt
	@echo "stress-smoke: summaries byte-identical at Workers=1 and Workers=4"

# bless re-records the golden trace hashes after a deliberate behaviour
# change. Inspect and commit the golden.txt diff.
bless:
	$(GO) run ./cmd/sdascen -bless

bench:
	$(GO) test -bench=. -benchmem

# bench-record runs the guarded benchmark subset and appends the next
# BENCH_<n>.json snapshot to the committed trajectory.
bench-record:
	$(GO) run ./cmd/sdabench -record

# bench-compare runs the same subset and fails on a >25% ns/op or >10%
# allocs/op regression against the latest committed snapshot.
bench-compare:
	$(GO) run ./cmd/sdabench -compare -q

# profile captures CPU and heap profiles plus an execution trace of the
# guarded benchmark subset. Inspect with: go tool pprof cpu.pprof
profile:
	$(GO) run ./cmd/sdabench -q -cpuprofile cpu.pprof -memprofile mem.pprof -exectrace exec.trace
	@echo "wrote cpu.pprof mem.pprof exec.trace (go tool pprof cpu.pprof)"

# obs exports the full telemetry bundle (spans, Prometheus metrics, CSV
# time series, SVG dashboard) of the baseline scenario into obs-out/.
obs:
	$(GO) run ./cmd/sdaobs -scenario testdata/scenarios/baseline_div.json -out obs-out

# blame exports the dag-forkjoin scenario's spans and prints the
# miss-cause attribution report (cause taxonomy and decomposition in
# docs/OBSERVABILITY.md).
blame:
	$(GO) run ./cmd/sdaobs -scenario testdata/scenarios/dag_forkjoin.json -out blame-out
	$(GO) run ./cmd/sdablame blame-out/spans.jsonl

# trace assembles the causal trace of the dag-forkjoin scenario (trees
# as JSONL plus a Chrome trace-event file) and a synthetic sdatrace run.
# Load trace-out/trace.chrome.json in https://ui.perfetto.dev.
trace:
	@mkdir -p trace-out
	$(GO) run ./cmd/sdaobs -scenario testdata/scenarios/dag_forkjoin.json -out trace-out
	$(GO) run ./cmd/sdatrace -psp DIV-1 -until 2000 -chrome trace-out/sdatrace.chrome.json -tree trace-out/sdatrace.trees.jsonl

# flight runs the full-size stress scenarios with the DES-kernel flight
# recorder attached and writes each lookahead-feasibility report
# (<name>.flight.md + .prom) into flight-out/.
flight:
	$(GO) run ./cmd/sdascen -flight flight-out stress-fleet-10k stress-zone-5k stress-coldstart-1k
