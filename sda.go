package sda

import (
	isda "repro/internal/sda"
	"repro/internal/simtime"
	"repro/internal/task"
)

// Time is an instant on the simulated clock (abstract time units).
type Time = simtime.Time

// Duration is a span of simulated time.
type Duration = simtime.Duration

// Task is one node of a serial-parallel task tree; see the task model in
// the package documentation.
type Task = task.Task

// Kind discriminates simple, serial and parallel task-tree nodes.
type Kind = task.Kind

// Task tree kinds.
const (
	KindSimple   = task.KindSimple
	KindSerial   = task.KindSerial
	KindParallel = task.KindParallel
)

// NewSimple returns a simple subtask executed at the given node with the
// given execution time.
func NewSimple(name string, nodeID int, ex Duration) (*Task, error) {
	return task.NewSimple(name, nodeID, ex)
}

// NewSerial returns a global task whose children execute in series.
func NewSerial(name string, children ...*Task) (*Task, error) {
	return task.NewSerial(name, children...)
}

// NewParallel returns a global task whose children execute in parallel.
func NewParallel(name string, children ...*Task) (*Task, error) {
	return task.NewParallel(name, children...)
}

// Parse reads a task tree from the paper's bracket notation, e.g.
// "[T1 [T2 || T3] T4]"; see internal/task.Parse for the grammar.
func Parse(input string) (*Task, error) { return task.Parse(input) }

// MustParse is Parse, panicking on error; for constant inputs.
func MustParse(input string) *Task { return task.MustParse(input) }

// PSP assigns virtual deadlines to parallel subtasks (UD, DIV-x, GF).
type PSP = isda.PSP

// SSP assigns virtual deadlines to serial stages (UD, ED, EQS, EQF).
type SSP = isda.SSP

// Assignment is a strategy's output: a virtual deadline and the optional
// GF priority boost.
type Assignment = isda.Assignment

// UD returns the Ultimate Deadline baseline for parallel subtasks:
// dl(Ti) = dl(T).
func UD() PSP { return isda.UD{} }

// Div returns the DIV-x strategy: dl(Ti) = ar + (dl - ar)/(n*x).
// It panics if x <= 0; use ParsePSP for validated construction from
// untrusted input.
func Div(x float64) PSP { return isda.MustDiv(x) }

// GF returns the Globals First strategy (priority-band encoding).
func GF() PSP { return isda.GF{} }

// GFDelta returns the Globals First strategy in the paper's literal
// encoding: a huge constant is subtracted from the deadline.
func GFDelta() PSP { return isda.GF{UseDelta: true} }

// SerialUD returns the Ultimate Deadline baseline for serial stages.
func SerialUD() SSP { return isda.SerialUD{} }

// ED returns the Effective Deadline strategy: reserve exactly the
// predicted downstream execution time.
func ED() SSP { return isda.ED{} }

// EQS returns the Equal Slack strategy: split the remaining slack evenly
// across the remaining stages.
func EQS() SSP { return isda.EQS{} }

// EQF returns the Equal Flexibility strategy: split the remaining slack
// in proportion to predicted stage execution times.
func EQF() SSP { return isda.EQF{} }

// ParsePSP resolves a parallel strategy by name ("UD", "DIV-1", "GF", ...).
func ParsePSP(name string) (PSP, error) { return isda.ParsePSP(name) }

// ParseSSP resolves a serial strategy by name ("UD", "ED", "EQS", "EQF").
func ParseSSP(name string) (SSP, error) { return isda.ParseSSP(name) }

// Plan applies the recursive SDA algorithm (paper Figure 13) offline,
// annotating every tree node's Arrival and VirtualDeadline.
func Plan(root *Task, ar Time, deadline Time, ssp SSP, psp PSP) error {
	return isda.Plan(root, ar, deadline, ssp, psp)
}
